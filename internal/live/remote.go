package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/wire"
)

// conn is a mutex-guarded framed connection with lazy dialing, so one
// remote endpoint serialises its request/response exchanges.
type conn struct {
	addr string

	mu sync.Mutex
	c  net.Conn
}

func (rc *conn) call(req wire.Message) (wire.Message, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.c == nil {
		c, err := net.DialTimeout("tcp", rc.addr, 5*time.Second)
		if err != nil {
			return wire.Message{}, fmt.Errorf("live: dial %s: %w", rc.addr, err)
		}
		rc.c = c
	}
	resp, err := wire.Call(rc.c, req)
	if err != nil && resp.Header.Op != wire.OpError {
		// Transport failure: drop the connection so the next call redials.
		rc.c.Close()
		rc.c = nil
	}
	return resp, err
}

func (rc *conn) close() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
}

// RemoteStore is the client adapter for a region's store server.
type RemoteStore struct{ rc conn }

// NewRemoteStore returns an adapter for the store server at addr.
func NewRemoteStore(addr string) *RemoteStore {
	return &RemoteStore{rc: conn{addr: addr}}
}

// Close drops the connection.
func (s *RemoteStore) Close() { s.rc.close() }

// Get fetches one chunk.
func (s *RemoteStore) Get(id backend.ChunkID) ([]byte, error) {
	resp, err := s.rc.call(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, backend.ErrNotFound
	}
	return resp.Body, nil
}

// Put stores one chunk.
func (s *RemoteStore) Put(id backend.ChunkID, data []byte) error {
	_, err := s.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index},
		Body:   data,
	})
	return err
}

// Stats fetches the server's counters.
func (s *RemoteStore) Stats() (map[string]int64, error) {
	resp, err := s.rc.call(wire.Message{Header: wire.Header{Op: wire.OpStats}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Stats, nil
}

// RemoteCache is the client adapter for a chunk cache server.
type RemoteCache struct{ rc conn }

// NewRemoteCache returns an adapter for the cache server at addr.
func NewRemoteCache(addr string) *RemoteCache {
	return &RemoteCache{rc: conn{addr: addr}}
}

// Close drops the connection.
func (c *RemoteCache) Close() { c.rc.close() }

// Get fetches one cached chunk.
func (c *RemoteCache) Get(id cache.EntryID) ([]byte, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, cache.ErrNotFound
	}
	return resp.Body, nil
}

// Put inserts one chunk.
func (c *RemoteCache) Put(id cache.EntryID, data []byte) error {
	_, err := c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index},
		Body:   data,
	})
	return err
}

// IndicesOf lists the resident chunk indices for a key.
func (c *RemoteCache) IndicesOf(key string) ([]int, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpIndices, Key: key}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Indices, nil
}

// DeleteObject removes every chunk of a key (write invalidation).
func (c *RemoteCache) DeleteObject(key string) error {
	_, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpDelObj, Key: key}})
	return err
}

// Snapshot fetches the cache's full contents summary.
func (c *RemoteCache) Snapshot() (map[string][]int, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpSnapshot}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Groups, nil
}

// Stats fetches cache counters.
func (c *RemoteCache) Stats() (map[string]int64, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpStats}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Stats, nil
}

// RemoteHinter asks an Agar node for caching hints over TCP.
type RemoteHinter struct{ rc conn }

// NewRemoteHinter returns an adapter for the hint server at addr.
func NewRemoteHinter(addr string) *RemoteHinter {
	return &RemoteHinter{rc: conn{addr: addr}}
}

// Close drops the connection.
func (h *RemoteHinter) Close() { h.rc.close() }

// Hint requests the caching hint for a key.
func (h *RemoteHinter) Hint(key string) ([]int, error) {
	resp, err := h.rc.call(wire.Message{Header: wire.Header{Op: wire.OpHint, Key: key}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Indices, nil
}

// UDPHinter asks for hints over UDP, like the paper's prototype.
type UDPHinter struct {
	addr *net.UDPAddr

	mu   sync.Mutex
	conn net.PacketConn
	buf  []byte
}

// NewUDPHinter returns a UDP hint client for the server at addr.
func NewUDPHinter(addr string) (*UDPHinter, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &UDPHinter{addr: ua, conn: conn, buf: make([]byte, 64<<10)}, nil
}

// Close releases the socket.
func (h *UDPHinter) Close() { h.conn.Close() }

// Hint requests the caching hint for a key, with a 2-second timeout.
func (h *UDPHinter) Hint(key string) ([]int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	err := wire.WriteDatagram(h.conn, h.addr, wire.Message{Header: wire.Header{Op: wire.OpHint, Key: key}})
	if err != nil {
		return nil, err
	}
	h.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, _, err := wire.ReadDatagram(h.conn, h.buf)
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpError {
		return nil, fmt.Errorf("live: hint error: %s", resp.Header.Error)
	}
	return resp.Header.Indices, nil
}
