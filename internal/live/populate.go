package live

import "sync"

// popJob is one pending cache fill: the hinted chunks of one object that a
// read had to fetch from the backend, plus the write version they were read
// at (zero for legacy unversioned data).
type popJob struct {
	key    string
	chunks map[int][]byte
	ver    uint64
}

// chunkSink is where the populator writes batched fills — the narrow slice
// of *RemoteCache it needs, injectable for tests.
type chunkSink interface {
	PutMulti(key string, chunks map[int][]byte) error
	PutMultiVer(key string, chunks map[int][]byte, ver uint64) error
}

// populator applies end-of-read cache fills on a bounded async worker pool,
// so readers hand hinted-but-missed chunks off and return immediately
// instead of blocking on cache round trips. The queue is bounded and
// enqueue never blocks: when it is full the incoming fill is simply
// dropped (the next read of that object re-hints and re-fetches it),
// which is an acceptable failure mode for a best-effort cache warmer.
type populator struct {
	cache chunkSink
	jobs  chan popJob
	wg    sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	dropped int64
	closed  bool
}

// newPopulator starts workers goroutines draining a queue of the given
// depth into the cache via batched PutMulti calls.
func newPopulator(cache chunkSink, workers, queue int) *populator {
	p := &populator{cache: cache, jobs: make(chan popJob, queue)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *populator) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		// Best effort: a failed fill just means the next read re-fetches. A
		// versioned fill carries the version the chunks were read at, so the
		// server can refuse it if a newer write has already raised the floor
		// — an unversioned fill of versioned data would dodge that check and
		// reintroduce pre-write chunks after an invalidation.
		if job.ver != 0 {
			_ = p.cache.PutMultiVer(job.key, job.chunks, job.ver)
		} else {
			_ = p.cache.PutMulti(job.key, job.chunks)
		}
		p.mu.Lock()
		p.pending--
		if p.pending == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// enqueue hands a fill to the pool without blocking; it reports false when
// the job was dropped (full queue or closed pool).
func (p *populator) enqueue(key string, chunks map[int][]byte, ver uint64) bool {
	if len(chunks) == 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- popJob{key: key, chunks: chunks, ver: ver}:
		p.pending++
		return true
	default:
		p.dropped++
		return false
	}
}

// flush blocks until every queued fill has been applied — deterministic
// teardown for tests and benchmarks.
func (p *populator) flush() {
	p.mu.Lock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// droppedCount reports how many fills were shed under queue pressure.
func (p *populator) droppedCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// depth reports the fills enqueued but not yet applied — the client-side
// twin of the server's dispatch_queue_depth gauge.
func (p *populator) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// close stops the workers after the queue drains. Safe to call twice;
// enqueue after close drops the job.
func (p *populator) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
}
