package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/wire"
)

func TestParseDispatch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Dispatch
		err  bool
	}{
		{"", DispatchShard, false},
		{"shard", DispatchShard, false},
		{"conn", DispatchConn, false},
		{"both", "", true},
		{"SHARD", "", true},
	} {
		got, err := ParseDispatch(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParseDispatch(%q) err = %v, want err %v", tc.in, err, tc.err)
		}
		if got != tc.want {
			t.Fatalf("ParseDispatch(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// testRouter routes OpGet by Header.Index so tests pick shards directly;
// everything else is a control op.
type testRouter struct{ n int }

func (r testRouter) shards() int { return r.n }
func (r testRouter) route(h wire.Header) (int, bool) {
	if h.Op == wire.OpGet {
		return h.Index % r.n, true
	}
	return 0, false
}
func (r testRouter) splittable(wire.Header) bool                  { return false }
func (r testRouter) split(wire.Message) ([]part, mergeFunc, bool) { return nil, nil, false }

// TestDispatcherPerShardConcurrency proves ops on different shards execute
// concurrently: two handlers must be inside the dispatcher at the same
// instant before either is released.
func TestDispatcherPerShardConcurrency(t *testing.T) {
	arrived := make(chan int, 2)
	release := make(chan struct{})
	h := func(req wire.Message) wire.Message {
		arrived <- req.Header.Index
		<-release
		return wire.Message{Header: wire.Header{Op: wire.OpOK, Index: req.Header.Index}}
	}
	d := newDispatcher(h, testRouter{n: 2}, new(atomic.Int64), nil, nil)
	defer d.stop()

	replies := [2]chan wire.Message{make(chan wire.Message, 1), make(chan wire.Message, 1)}
	for shard := 0; shard < 2; shard++ {
		d.dispatch(wire.Message{Header: wire.Header{Op: wire.OpGet, Index: shard}}, replies[shard])
	}
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 2 shard handlers running concurrently", i)
		}
	}
	if depth := d.QueueDepth(); depth != 2 {
		t.Fatalf("queue depth %d with two ops in flight, want 2", depth)
	}
	close(release)
	for shard := 0; shard < 2; shard++ {
		resp := <-replies[shard]
		if resp.Header.Op != wire.OpOK || resp.Header.Index != shard {
			t.Fatalf("shard %d reply = %+v", shard, resp.Header)
		}
	}
}

// TestDispatcherSameShardSerializes proves the flip side: two ops on one
// shard never run concurrently — the second waits for the first.
func TestDispatcherSameShardSerializes(t *testing.T) {
	var inside atomic.Int32
	var maxInside atomic.Int32
	h := func(req wire.Message) wire.Message {
		n := inside.Add(1)
		for {
			cur := maxInside.Load()
			if n <= cur || maxInside.CompareAndSwap(cur, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inside.Add(-1)
		return wire.Message{Header: wire.Header{Op: wire.OpOK}}
	}
	d := newDispatcher(h, testRouter{n: 4}, new(atomic.Int64), nil, nil)
	defer d.stop()

	const ops = 16
	replies := make([]chan wire.Message, ops)
	for i := range replies {
		replies[i] = make(chan wire.Message, 1)
		d.dispatch(wire.Message{Header: wire.Header{Op: wire.OpGet, Index: 4}}, replies[i]) // all shard 0
	}
	for _, r := range replies {
		<-r
	}
	if got := maxInside.Load(); got != 1 {
		t.Fatalf("%d handlers ran concurrently on one shard, want 1", got)
	}
}

// TestShardDispatchFanIn hammers one shard-dispatching cache server from
// many connections across every shard, asserting the data plane stays
// correct, the OpStats counters stay consistent, and the queue-depth gauge
// drains to zero once the fan-in stops.
func TestShardDispatchFanIn(t *testing.T) {
	const (
		shards  = 8
		clients = 16
		keys    = 4
		indices = 64 // covers every shard many times over
	)
	c := cache.NewSharded(1<<22, shards, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, DispatchShard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Every shard must see traffic for "across all shards" to mean anything.
	seen := make(map[int]bool)
	for k := 0; k < keys; k++ {
		for i := 0; i < indices; i++ {
			seen[c.ShardIndex(cache.EntryID{Key: fmt.Sprintf("key-%d", k), Index: i})] = true
		}
	}
	if len(seen) != shards {
		t.Fatalf("test keys cover %d of %d shards", len(seen), shards)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			remote := NewRemoteCache(srv.Addr())
			defer remote.Close()
			rng := rand.New(rand.NewSource(int64(cl)))
			for op := 0; op < 120; op++ {
				key := fmt.Sprintf("key-%d", rng.Intn(keys))
				switch op % 3 {
				case 0: // single put then read-back
					idx := rng.Intn(indices)
					want := []byte(fmt.Sprintf("%s#%d", key, idx))
					if err := remote.Put(cache.EntryID{Key: key, Index: idx}, want); err != nil {
						errs <- err
						return
					}
					got, err := remote.Get(cache.EntryID{Key: key, Index: idx})
					if err != nil {
						errs <- fmt.Errorf("get %s#%d: %w", key, idx, err)
						return
					}
					if !bytes.Equal(got, want) {
						errs <- fmt.Errorf("get %s#%d = %q, want %q", key, idx, got, want)
						return
					}
				case 1: // batched put across shards
					chunks := make(map[int][]byte)
					for i := 0; i < 12; i++ {
						idx := rng.Intn(indices)
						chunks[idx] = []byte(fmt.Sprintf("%s#%d", key, idx))
					}
					if err := remote.PutMulti(key, chunks); err != nil {
						errs <- err
						return
					}
				case 2: // batched read across shards: every hit must be right
					idxs := make([]int, 0, 16)
					for i := 0; i < 16; i++ {
						idxs = append(idxs, rng.Intn(indices))
					}
					found, err := remote.GetMulti(key, idxs)
					if err != nil {
						errs <- err
						return
					}
					for idx, data := range found {
						if want := fmt.Sprintf("%s#%d", key, idx); string(data) != want {
							errs <- fmt.Errorf("mget %s#%d = %q, want %q", key, idx, data, want)
							return
						}
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()
	stats, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["shards"] != shards {
		t.Fatalf("stats shards = %d, want %d", stats["shards"], shards)
	}
	if stats["gets"] <= 0 || stats["sets"] <= 0 {
		t.Fatalf("stats show no traffic: %v", stats)
	}
	if stats["hits"] > stats["gets"] {
		t.Fatalf("hits %d exceed gets %d", stats["hits"], stats["gets"])
	}
	if _, ok := stats["dispatch_queue_depth"]; !ok {
		t.Fatalf("stats missing dispatch_queue_depth: %v", stats)
	}
	if depth := stats["dispatch_queue_depth"]; depth != 0 {
		t.Fatalf("dispatch_queue_depth = %d after quiesce, want 0", depth)
	}
}

// TestSplitBatchReplyOrdering checks a split mget's reply arrives re-merged
// in ascending chunk order with the exact framing an unsplit reply uses.
func TestSplitBatchReplyOrdering(t *testing.T) {
	c := cache.NewSharded(1<<22, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, DispatchShard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	want := make(map[int][]byte)
	for i := 0; i < 32; i++ {
		want[i] = []byte(fmt.Sprintf("chunk-%02d", i))
	}
	if err := remote.PutMulti("obj", want); err != nil {
		t.Fatal(err)
	}

	// Raw connection: inspect the reply frame itself, not the client's view.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	idxs := []int{31, 7, 0, 19, 4, 25, 12, 1, 30, 9} // deliberately shuffled
	resp, err := wire.Call(conn, wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: "obj", Indices: idxs}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Op != wire.OpOK {
		t.Fatalf("mget reply op %q", resp.Header.Op)
	}
	if len(resp.Header.Indices) != len(idxs) {
		t.Fatalf("mget returned %d chunks, want %d", len(resp.Header.Indices), len(idxs))
	}
	for i := 1; i < len(resp.Header.Indices); i++ {
		if resp.Header.Indices[i-1] >= resp.Header.Indices[i] {
			t.Fatalf("reply indices not ascending: %v", resp.Header.Indices)
		}
	}
	got, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs {
		if !bytes.Equal(got[idx], want[idx]) {
			t.Fatalf("chunk %d = %q, want %q", idx, got[idx], want[idx])
		}
	}
}

// TestConnShardByteParity replays one scripted op sequence against a conn-
// dispatch and a shard-dispatch server over the same cache shape and
// requires every reply frame to match byte for byte — single-shard and
// sharded.
func TestConnShardByteParity(t *testing.T) {
	script := []wire.Message{
		{Header: wire.Header{Op: wire.OpPut, Key: "a", Index: 0}, Body: []byte("zero")},
		{Header: wire.Header{Op: wire.OpPut, Key: "a", Index: 5}, Body: []byte("five")},
		{Header: wire.Header{Op: wire.OpGet, Key: "a", Index: 0}},
		{Header: wire.Header{Op: wire.OpGet, Key: "a", Index: 9}}, // miss
		{Header: wire.Header{Op: wire.OpMGet, Key: "a", Indices: []int{5, 0, 9}}},
		{Header: wire.Header{Op: wire.OpIndices, Key: "a"}},
		{Header: wire.Header{Op: wire.OpDelete, Key: "a", Index: 5}},
		{Header: wire.Header{Op: wire.OpMGet, Key: "a", Indices: []int{5}}}, // now empty
		{Header: wire.Header{Op: wire.OpSnapshot}},
		{Header: wire.Header{Op: wire.OpStats}},
	}
	// An mput built once so both servers see identical frames.
	mputIdx, mputSizes, mputBody, err := wire.PackBatch(map[int][]byte{2: []byte("two"), 11: []byte("eleven")})
	if err != nil {
		t.Fatal(err)
	}
	script = append(script,
		wire.Message{Header: wire.Header{Op: wire.OpMPut, Key: "b", Indices: mputIdx, Sizes: mputSizes}, Body: mputBody},
		wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: "b", Indices: []int{11, 2}}},
	)

	for _, shards := range []int{1, 8} {
		replies := make(map[Dispatch][][]byte)
		for _, mode := range []Dispatch{DispatchConn, DispatchShard} {
			c := cache.NewSharded(1<<20, shards, func() cache.Policy { return cache.NewLRU() })
			srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, mode)
			if err != nil {
				t.Fatal(err)
			}
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for _, req := range script {
				if err := wire.Write(conn, req); err != nil {
					t.Fatal(err)
				}
				resp, err := wire.Read(conn)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := wire.Encode(resp)
				if err != nil {
					t.Fatal(err)
				}
				replies[mode] = append(replies[mode], raw)
			}
			conn.Close()
			srv.Close()
		}
		if len(replies[DispatchConn]) != len(replies[DispatchShard]) {
			t.Fatalf("shards=%d: reply counts differ", shards)
		}
		for i := range replies[DispatchConn] {
			if !bytes.Equal(replies[DispatchConn][i], replies[DispatchShard][i]) {
				t.Fatalf("shards=%d op %d (%s): conn reply %q != shard reply %q",
					shards, i, script[i].Header.Op, replies[DispatchConn][i], replies[DispatchShard][i])
			}
		}
	}
}

// TestDispatchPipelineOrder pipelines requests on one connection whose ops
// land on differently loaded shards and requires replies in request order:
// a fast op behind a slow one must wait its turn, while a second connection
// hitting the fast shard overtakes both.
func TestDispatchPipelineOrder(t *testing.T) {
	slow := make(chan struct{})
	h := func(req wire.Message) wire.Message {
		if req.Header.Index%2 == 0 { // shard 0 ops stall until released
			<-slow
		}
		return wire.Message{Header: wire.Header{Op: wire.OpOK, Index: req.Header.Index}}
	}
	srv, err := newShardServer("127.0.0.1:0", h, testRouter{n: 2}, new(atomic.Int64), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	connA, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	// Pipeline on A: slow shard-0 op first, fast shard-1 op second.
	if err := wire.Write(connA, wire.Message{Header: wire.Header{Op: wire.OpGet, Index: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(connA, wire.Message{Header: wire.Header{Op: wire.OpGet, Index: 1}}); err != nil {
		t.Fatal(err)
	}

	// B's fast-shard op must complete while A's slow op still blocks its
	// pipeline — two connections on different shards never serialize.
	connB, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	resp, err := wire.Call(connB, wire.Message{Header: wire.Header{Op: wire.OpGet, Index: 3}})
	if err != nil || resp.Header.Index != 3 {
		t.Fatalf("conn B overtake: %+v, %v", resp.Header, err)
	}

	close(slow)
	for _, wantIdx := range []int{0, 1} {
		resp, err := wire.Read(connA)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Index != wantIdx {
			t.Fatalf("pipelined reply out of order: got index %d, want %d", resp.Header.Index, wantIdx)
		}
	}
}

// TestControlOpOrdersAfterPipelinedOps pipelines shard ops and then a
// control op (delobj) on one connection: the control op must execute after
// every earlier op, exactly as a conn-dispatch loop orders them — not just
// reply in order.
func TestControlOpOrdersAfterPipelinedOps(t *testing.T) {
	c := cache.NewSharded(1<<22, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, DispatchShard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 20; round++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		const puts = 16
		// One buffered burst so the server sees pipelined frames: puts
		// across every shard, then the object-level delete, then the
		// residency probe.
		var burst []byte
		for i := 0; i < puts; i++ {
			frame, err := wire.Encode(wire.Message{
				Header: wire.Header{Op: wire.OpPut, Key: "obj", Index: i}, Body: []byte("data")})
			if err != nil {
				t.Fatal(err)
			}
			burst = append(burst, frame...)
		}
		for _, h := range []wire.Header{{Op: wire.OpDelObj, Key: "obj"}, {Op: wire.OpIndices, Key: "obj"}} {
			frame, err := wire.Encode(wire.Message{Header: h})
			if err != nil {
				t.Fatal(err)
			}
			burst = append(burst, frame...)
		}
		if _, err := conn.Write(burst); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < puts+1; i++ {
			resp, err := wire.Read(conn)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Header.Op != wire.OpOK {
				t.Fatalf("reply %d: %+v", i, resp.Header)
			}
		}
		resp, err := wire.Read(conn)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Header.Indices) != 0 {
			t.Fatalf("round %d: delobj ran before %d pipelined puts finished: residency %v",
				round, len(resp.Header.Indices), resp.Header.Indices)
		}
		conn.Close()
	}
}

// TestStorePipelinedReadYourWrites pipelines a put and a batched mget of
// the same key on one store-server connection: the mget must observe the
// put (both route to the same worker, in order).
func TestStorePipelinedReadYourWrites(t *testing.T) {
	st := backend.NewStore(geo.Frankfurt)
	srv, err := NewStoreServerDispatch("127.0.0.1:0", st, DispatchShard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for round := 0; round < 20; round++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("obj-%d", round)
		var burst []byte
		put, err := wire.Encode(wire.Message{
			Header: wire.Header{Op: wire.OpPut, Key: key, Index: 5}, Body: []byte("five")})
		if err != nil {
			t.Fatal(err)
		}
		mget, err := wire.Encode(wire.Message{
			Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: []int{5}}})
		if err != nil {
			t.Fatal(err)
		}
		burst = append(append(burst, put...), mget...)
		if _, err := conn.Write(burst); err != nil {
			t.Fatal(err)
		}
		if resp, err := wire.Read(conn); err != nil || resp.Header.Op != wire.OpOK {
			t.Fatalf("put reply: %+v, %v", resp.Header, err)
		}
		resp, err := wire.Read(conn)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[5], []byte("five")) {
			t.Fatalf("round %d: pipelined mget missed the put: %v", round, got)
		}
		conn.Close()
	}
}

// benchDispatchGet measures the serial request/response rhythm every pooled
// client adapter produces — the adaptive fast path under shard dispatch.
func benchDispatchGet(b *testing.B, mode Dispatch) {
	c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, mode)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 64; i++ {
		c.Put(cache.EntryID{Key: "k", Index: i}, make([]byte, 1024))
	}
	rc := NewRemoteCache(srv.Addr())
	defer rc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Get(cache.EntryID{Key: "k", Index: i % 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchConnGet(b *testing.B)  { benchDispatchGet(b, DispatchConn) }
func BenchmarkDispatchShardGet(b *testing.B) { benchDispatchGet(b, DispatchShard) }

// benchDispatchPipelined keeps a 16-frame window in flight on one raw
// connection — the client shape that drives the queued path, where shard
// dispatch overlaps ops across shard workers while conn dispatch serializes
// them. The paired regression probe for multi-core environments.
func benchDispatchPipelined(b *testing.B, mode Dispatch) {
	c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, mode)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 64; i++ {
		c.Put(cache.EntryID{Key: "k", Index: i}, make([]byte, 1024))
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	const window = 16
	b.ResetTimer()
	inFlight := 0
	for i := 0; i < b.N; i++ {
		if err := wire.Write(conn, wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k", Index: i % 64}}); err != nil {
			b.Fatal(err)
		}
		inFlight++
		if inFlight == window {
			if _, err := wire.Read(conn); err != nil {
				b.Fatal(err)
			}
			inFlight--
		}
	}
	for ; inFlight > 0; inFlight-- {
		if _, err := wire.Read(conn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchConnPipelined(b *testing.B)  { benchDispatchPipelined(b, DispatchConn) }
func BenchmarkDispatchShardPipelined(b *testing.B) { benchDispatchPipelined(b, DispatchShard) }

// TestDispatchCleanDrain closes a shard server with ops still in flight and
// requires Close to return with every queue drained.
func TestDispatchCleanDrain(t *testing.T) {
	c := cache.NewSharded(1<<22, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerDispatch("127.0.0.1:0", c, nil, DispatchShard)
	if err != nil {
		t.Fatal(err)
	}

	// Blast pipelined frames from several raw connections and never read a
	// reply, so the server is mid-flight everywhere when Close lands.
	var conns []net.Conn
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		for op := 0; op < 32; op++ {
			msg := wire.Message{Header: wire.Header{Op: wire.OpPut, Key: fmt.Sprintf("k%d", i), Index: op},
				Body: []byte("data")}
			if err := wire.Write(conn, msg); err != nil {
				t.Fatal(err)
			}
		}
	}

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	if depth := srv.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth %d after Close, want 0", depth)
	}
	for _, conn := range conns {
		conn.Close()
	}
}
