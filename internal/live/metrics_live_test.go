package live

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/wire"
)

// TestMetricsScrapeMatchesWireStats drives a known op sequence through a
// cache server and requires the /metrics exposition and the wire-level
// stats op to agree on every shared counter — both surfaces read the same
// registry children, so any drift is a bug.
func TestMetricsScrapeMatchesWireStats(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cache.NewSharded(1<<20, 4, func() cache.Policy { return cache.NewLRU() })
	table := coop.NewTable()
	srv, err := NewCacheServerOpts("127.0.0.1:0", c, table, ServerOptions{
		Registry: reg, Region: "frankfurt",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	// Known sequence: two sets, one hit, one miss.
	if err := remote.Put(cache.EntryID{Key: "obj", Index: 1}, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Put(cache.EntryID{Key: "obj", Index: 2}, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Get(cache.EntryID{Key: "obj", Index: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Get(cache.EntryID{Key: "gone", Index: 9}); err != cache.ErrNotFound {
		t.Fatalf("miss: err = %v", err)
	}
	wireStats, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if wireStats["gets"] != 2 || wireStats["hits"] != 1 || wireStats["sets"] != 2 {
		t.Fatalf("wire stats off: %v", wireStats)
	}

	// Scrape over real HTTP, parse with the package's own parser.
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Every wire stats key with a registry family must expose the same
	// value (no ops ran between the stats call and the scrape).
	families := map[string]string{
		"gets":                 metrics.NameCacheGets,
		"hits":                 metrics.NameCacheHits,
		"sets":                 metrics.NameCacheSets,
		"evictions":            metrics.NameCacheEvictions,
		"admission_rejects":    metrics.NameCacheAdmissionRejects,
		"full_rejects":         metrics.NameCacheFullRejects,
		"used":                 metrics.NameCacheUsedBytes,
		"capacity":             metrics.NameCacheCapacityBytes,
		"shards":               metrics.NameCacheShards,
		"dispatch_queue_depth": metrics.NameServerQueueDepth,
		"peer_hits":            metrics.NameCoopPeerHits,
		"peer_misses":          metrics.NameCoopPeerMisses,
		"digests":              metrics.NameCoopDigests,
		"digests_stale":        metrics.NameCoopDigestsStale,
		"digest_deltas":        metrics.NameCoopDigestDeltas,
	}
	sel := map[string]string{"server": "cache"}
	for key, famName := range families {
		want, ok := wireStats[key]
		if !ok {
			t.Errorf("wire stats missing %q", key)
			continue
		}
		fam, ok := metrics.SelectFamily(fams, famName)
		if !ok {
			t.Errorf("scrape missing family %s (wire key %q)", famName, key)
			continue
		}
		s, ok := metrics.SelectSample(fam, sel)
		if !ok {
			t.Errorf("family %s has no server=cache sample", famName)
			continue
		}
		if int64(s.Value) != want {
			t.Errorf("%s = %v, wire %q = %d", famName, s.Value, key, want)
		}
	}

	// The op latency histograms must have counted the sequence: 2 gets,
	// 2 puts, and at least the one stats op.
	ex, ok := metrics.SelectFamily(fams, metrics.NameServerOpExecute)
	if !ok {
		t.Fatalf("scrape missing %s", metrics.NameServerOpExecute)
	}
	for op, want := range map[string]uint64{wire.OpGet: 2, wire.OpPut: 2} {
		s, ok := metrics.SelectSample(ex, map[string]string{"server": "cache", "op": op})
		if !ok || s.Count != want {
			t.Errorf("execute histogram op=%s count = %d (ok=%v), want %d", op, s.Count, ok, want)
		}
	}
	if s, ok := metrics.SelectSample(ex, map[string]string{"server": "cache", "op": wire.OpStats}); !ok || s.Count < 1 {
		t.Errorf("execute histogram op=stats count = %d (ok=%v), want >= 1", s.Count, ok)
	}
}

// benchServerGet measures serial single-chunk gets over the wire, with the
// server either fully instrumented (default construction) or built with a
// nil serverMetrics — the baseline with no time.Now() calls on the op path.
// The pair bounds instrumentation overhead.
func benchServerGet(b *testing.B, instrumented bool) {
	c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
	var srv *Server
	var err error
	if instrumented {
		srv, err = NewCacheServerOpts("127.0.0.1:0", c, nil, ServerOptions{})
	} else {
		srv, err = newShardServer("127.0.0.1:0", cacheHandler(c, nil, coherence.NewVersionTable(), nil, wire.NewBufferPool()), &cacheRouter{c: c}, new(atomic.Int64), nil, nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 64; i++ {
		c.Put(cache.EntryID{Key: "k", Index: i}, make([]byte, 1024))
	}
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.Get(cache.EntryID{Key: "k", Index: i % 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerGetInstrumented(b *testing.B) { benchServerGet(b, true) }
func BenchmarkServerGetBaseline(b *testing.B)     { benchServerGet(b, false) }
