package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

func TestRemoteCacheBatchRoundTrip(t *testing.T) {
	c := cache.NewSharded(1<<20, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	chunks := map[int][]byte{0: []byte("aa"), 3: []byte("bbb"), 7: []byte("c")}
	if err := remote.PutMulti("obj", chunks); err != nil {
		t.Fatal(err)
	}
	// Ask for a superset: absent indices must simply be missing.
	got, err := remote.GetMulti("obj", []int{0, 1, 3, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("GetMulti returned %d chunks: %v", len(got), got)
	}
	for idx, want := range chunks {
		if !bytes.Equal(got[idx], want) {
			t.Fatalf("chunk %d = %q, want %q", idx, got[idx], want)
		}
	}
	// All-miss batches return an empty map, not an error.
	got, err = remote.GetMulti("missing", []int{0, 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("all-miss: got %v err %v", got, err)
	}
	// Empty requests don't touch the wire.
	got, err = remote.GetMulti("obj", nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty mget: got %v err %v", got, err)
	}
	if err := remote.PutMulti("obj", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteCacheBatchRespectsAdmission(t *testing.T) {
	c := cache.New(1<<20, cache.NewLRU())
	c.SetAdmission(func(id cache.EntryID) bool { return id.Index%2 == 0 })
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	if err := remote.PutMulti("obj", map[int][]byte{0: {1}, 1: {2}, 2: {3}, 3: {4}}); err != nil {
		t.Fatal(err)
	}
	got, err := remote.GetMulti("obj", []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != nil || got[3] != nil {
		t.Fatalf("admission ignored by batch put: %v", got)
	}
	stats, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"rejected", "admission_rejects", "full_rejects", "capacity", "used", "shards"} {
		if _, ok := stats[field]; !ok {
			t.Errorf("stats missing %q: %v", field, stats)
		}
	}
	if stats["admission_rejects"] != 2 || stats["rejected"] != 2 || stats["full_rejects"] != 0 {
		t.Fatalf("reject counters wrong: %v", stats)
	}
	if stats["capacity"] != 1<<20 {
		t.Fatalf("capacity = %d", stats["capacity"])
	}
}

func TestRemoteCachePoolServesConcurrentCallers(t *testing.T) {
	c := cache.NewSharded(1<<20, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(8))
				switch rng.Intn(3) {
				case 0:
					if err := remote.PutMulti(key, map[int][]byte{rng.Intn(4): {byte(i)}, 4 + rng.Intn(4): {byte(g)}}); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := remote.GetMulti(key, []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := remote.Get(cache.EntryID{Key: key, Index: rng.Intn(8)}); err != nil && err != cache.ErrNotFound {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNetworkReaderDegradedWaveOnMidFlightFailure kills a store server the
// planner still believes is alive: the in-flight chunk fetch dies and the
// reader must substitute chunks from the remaining regions instead of
// failing the read.
func TestNetworkReaderDegradedWaveOnMidFlightFailure(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		K:            4,
		M:            2, // one chunk per default region
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	data := make([]byte, 8_000)
	rand.New(rand.NewSource(11)).Read(data)
	if err := cluster.Backend().PutObject("obj", data); err != nil {
		t.Fatal(err)
	}
	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if _, _, _, err := reader.Read("obj"); err != nil {
		t.Fatalf("healthy read: %v", err)
	}

	// Dublin is Frankfurt's nearest remote region, so its chunk is in every
	// fetch plan. Killing its server is invisible to planning (no schedule
	// cut) — the failure happens mid-flight.
	cluster.storeSrvs[geo.Dublin].Close()

	for i := 0; i < 3; i++ {
		got, _, _, err := reader.Read("obj")
		if err != nil {
			t.Fatalf("read with dublin dead mid-flight: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("degraded wave returned wrong data")
		}
	}
}

func TestPopulatorFlushAndDrop(t *testing.T) {
	c := cache.New(1<<20, cache.NewLRU())
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	p := newPopulator(remote, 2, 4)
	for i := 0; i < 32; i++ {
		p.enqueue(fmt.Sprintf("k%d", i), map[int][]byte{0: make([]byte, 128)}, 0)
	}
	p.flush()
	if got := c.Len(); got == 0 {
		t.Fatal("flush returned before any fill landed")
	}
	// Some of 32 instant enqueues over a 4-deep queue may shed; all applied
	// plus dropped must account for every job.
	applied := int64(c.Len())
	if applied+p.droppedCount() != 32 {
		t.Fatalf("applied %d + dropped %d != 32", applied, p.droppedCount())
	}
	p.close()
	if p.enqueue("late", map[int][]byte{0: {1}}, 0) {
		t.Fatal("enqueue after close must drop")
	}
	p.close() // idempotent
}

func TestPopulatorEmptyEnqueueIsNoop(t *testing.T) {
	p := newPopulator(nil, 1, 1)
	defer p.close()
	if !p.enqueue("k", nil, 0) {
		t.Fatal("empty fill should be accepted as a no-op")
	}
	p.flush()
}

// startBenchCache boots a cache server preloaded with one object's chunks
// and returns a connected client.
func startBenchCache(b *testing.B, shards int) (*RemoteCache, func()) {
	b.Helper()
	var c *cache.Cache
	if shards <= 1 {
		c = cache.New(1<<26, cache.NewLRU())
	} else {
		c = cache.NewSharded(1<<26, shards, func() cache.Policy { return cache.NewLRU() })
	}
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		b.Fatal(err)
	}
	remote := NewRemoteCache(srv.Addr())
	data := make([]byte, 4096)
	for obj := 0; obj < 64; obj++ {
		for idx := 0; idx < 9; idx++ {
			if err := c.Put(cache.EntryID{Key: fmt.Sprintf("obj%d", obj), Index: idx}, data); err != nil {
				b.Fatal(err)
			}
		}
	}
	return remote, func() { remote.Close(); srv.Close() }
}

// BenchmarkRemoteCachePerChunk is the pre-refactor baseline end to end:
// a single-lock cache behind nine sequential single-chunk round trips per
// object.
func BenchmarkRemoteCachePerChunk(b *testing.B) {
	remote, stop := startBenchCache(b, 1)
	defer stop()
	b.SetBytes(9 * 4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("obj%d", i%64)
			for idx := 0; idx < 9; idx++ {
				if _, err := remote.Get(cache.EntryID{Key: key, Index: idx}); err != nil {
					b.Error(err)
					return
				}
			}
			i++
		}
	})
}

// BenchmarkRemoteCacheBatched is the refactored data plane end to end: an
// 8-shard cache behind one OpMGet round trip for all nine chunks.
func BenchmarkRemoteCacheBatched(b *testing.B) {
	remote, stop := startBenchCache(b, 8)
	defer stop()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	b.SetBytes(9 * 4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			got, err := remote.GetMulti(fmt.Sprintf("obj%d", i%64), want)
			if err != nil {
				b.Error(err)
				return
			}
			if len(got) != 9 {
				b.Errorf("got %d chunks", len(got))
				return
			}
			i++
		}
	})
}

// BenchmarkRemoteStoreSerializedConn approximates the old single-connection
// adapter by bounding the benchmark to one in-flight call per goroutine
// pair; BenchmarkRemoteStorePooled lets the pool overlap exchanges.
func BenchmarkRemoteStorePooled(b *testing.B) {
	store := backend.NewStore(geo.Frankfurt)
	srv, err := NewStoreServer("127.0.0.1:0", store)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	remote := NewRemoteStore(srv.Addr())
	defer remote.Close()
	data := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		store.Put(backend.ChunkID{Key: fmt.Sprintf("k%d", i), Index: 0}, data)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := remote.Get(backend.ChunkID{Key: fmt.Sprintf("k%d", i%64), Index: 0}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
