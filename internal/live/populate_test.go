package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingSink gates PutMulti on a channel so tests can hold workers busy
// deterministically, and records every applied fill.
type blockingSink struct {
	gate chan struct{} // receive to proceed; closed = never block

	mu      sync.Mutex
	applied []popJob
}

func newBlockingSink() *blockingSink {
	return &blockingSink{gate: make(chan struct{})}
}

func (s *blockingSink) PutMulti(key string, chunks map[int][]byte) error {
	<-s.gate
	s.mu.Lock()
	s.applied = append(s.applied, popJob{key: key, chunks: chunks})
	s.mu.Unlock()
	return nil
}

func (s *blockingSink) PutMultiVer(key string, chunks map[int][]byte, ver uint64) error {
	<-s.gate
	s.mu.Lock()
	s.applied = append(s.applied, popJob{key: key, chunks: chunks, ver: ver})
	s.mu.Unlock()
	return nil
}

func (s *blockingSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applied)
}

func chunksFor(i int) map[int][]byte {
	return map[int][]byte{i: {byte(i)}}
}

// TestPopulatorOverflowDropsWithoutBlocking holds the single worker on a
// blocked fill, overfills the one-slot queue, and checks that the excess
// enqueues are shed immediately — counted, reported false, and never
// blocking the (simulated) read path.
func TestPopulatorOverflowDropsWithoutBlocking(t *testing.T) {
	sink := newBlockingSink()
	p := newPopulator(sink, 1, 1)
	defer func() { close(sink.gate); p.close() }()

	// First job is picked up by the worker and parks on the gate; second
	// fills the queue. Poll until the queue slot is genuinely occupied so
	// the overflow below is deterministic.
	if !p.enqueue("job-0", chunksFor(0), 0) {
		t.Fatal("first enqueue dropped")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(p.jobs) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked the first job up")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.enqueue("job-1", chunksFor(1), 0) {
		t.Fatal("queue-filling enqueue dropped")
	}

	// Queue full, worker blocked: every further enqueue must shed, fast.
	const overflow = 5
	startedAt := time.Now()
	for i := 0; i < overflow; i++ {
		if p.enqueue("job-overflow", chunksFor(2+i), 0) {
			t.Fatalf("overflow enqueue %d accepted with a full queue", i)
		}
	}
	if elapsed := time.Since(startedAt); elapsed > time.Second {
		t.Fatalf("overflow enqueues took %v — enqueue blocked", elapsed)
	}
	if got := p.droppedCount(); got != overflow {
		t.Fatalf("droppedCount = %d, want %d", got, overflow)
	}

	// Empty chunk maps are a no-op success, not a drop.
	if !p.enqueue("empty", nil, 0) {
		t.Fatal("empty fill reported dropped")
	}
	if got := p.droppedCount(); got != overflow {
		t.Fatalf("droppedCount moved to %d on an empty fill", got)
	}
}

// TestFlushPopulationWaitsForEveryQueuedFill checks flush determinism:
// after flush returns, every accepted fill has been applied to the sink,
// and flushing an idle populator returns immediately.
func TestFlushPopulationWaitsForEveryQueuedFill(t *testing.T) {
	sink := newBlockingSink()
	close(sink.gate) // workers never block
	p := newPopulator(sink, 2, 64)
	defer p.close()

	p.flush() // idle flush must not hang

	const jobs = 40
	accepted := 0
	for i := 0; i < jobs; i++ {
		if p.enqueue("k", chunksFor(i), 0) {
			accepted++
		}
	}
	p.flush()
	if got := sink.count(); got != accepted {
		t.Fatalf("after flush %d fills applied, %d accepted", got, accepted)
	}
	p.flush() // second flush is a no-op
	if got := sink.count(); got != accepted {
		t.Fatalf("second flush changed applied fills to %d", got)
	}
}

// TestPopulatorCloseSheddingAndIdempotence: close drains the queue, is
// callable twice, and enqueues after close are shed.
func TestPopulatorCloseSheddingAndIdempotence(t *testing.T) {
	sink := newBlockingSink()
	close(sink.gate)
	p := newPopulator(sink, 1, 8)
	p.enqueue("k", chunksFor(0), 0)
	p.close()
	p.close()
	if p.enqueue("late", chunksFor(1), 0) {
		t.Fatal("enqueue accepted after close")
	}
	if sink.count() != 1 {
		t.Fatalf("close applied %d fills, want 1", sink.count())
	}
}

// TestPopulatorConcurrentEndOfReadFills exercises the pool the way
// concurrent readers do — many goroutines enqueuing end-of-read fills
// while another flushes — and is meaningful under -race: every fill must
// either land exactly once or be counted dropped.
func TestPopulatorConcurrentEndOfReadFills(t *testing.T) {
	sink := newBlockingSink()
	close(sink.gate)
	p := newPopulator(sink, 3, 16)

	const readers, fills = 8, 50
	var acceptedTotal atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < fills; i++ {
				if p.enqueue("obj", chunksFor(g*fills+i), 0) {
					acceptedTotal.Add(1)
				}
				if i%10 == 0 {
					p.flush()
				}
			}
		}(g)
	}
	wg.Wait()
	p.flush()
	applied := int64(sink.count())
	dropped := p.droppedCount()
	if applied != acceptedTotal.Load() {
		t.Fatalf("applied %d, accepted %d", applied, acceptedTotal.Load())
	}
	if applied+dropped != readers*fills {
		t.Fatalf("applied %d + dropped %d != %d enqueued", applied, dropped, readers*fills)
	}
	p.close()
}
