package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/hlc"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/netsim"
)

// Session carries one client's coherence floors across reads and writes:
// each write records its version, and a session read refuses to settle on
// anything older — read-your-writes without any cross-client coordination.
// Successful reads also advance the floor (monotonic reads). Safe for
// concurrent use, though a session models one logical client.
type Session struct {
	mu     sync.Mutex
	floors map[string]uint64
}

// NewSession returns an empty session.
func NewSession() *Session { return &Session{floors: make(map[string]uint64)} }

// Observe raises the session's floor for the key (never lowers it).
func (s *Session) Observe(key string, ver uint64) {
	if ver == 0 {
		return
	}
	s.mu.Lock()
	if ver > s.floors[key] {
		s.floors[key] = ver
	}
	s.mu.Unlock()
}

// Floor returns the session's version floor for the key (zero when the
// session has never touched it).
func (s *Session) Floor(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[key]
}

// NetworkWriter is the versioned mutation path over the live deployment:
// every write stamps one hybrid-logical-clock version, erasure-codes the
// object, writes each chunk through to its placed region's store server
// under that version, and then invalidates the client region's cache so no
// pre-write chunk is served again. Cross-region caches learn of the write
// through the cooperative digest mesh (the invalidation rides the next
// digest), which bounds their staleness at one digest period. Writes to
// the same key from anywhere resolve last-writer-wins by version; a write
// racing a newer one fails with *backend.StaleError instead of partially
// overwriting it.
type NetworkWriter struct {
	cluster *Cluster
	region  geo.RegionID
	clock   *hlc.Clock
	stores  map[geo.RegionID]*RemoteStore
	cacheC  *RemoteCache
	sampler *netsim.Sampler
	hist    *metrics.Histogram
}

// writeBuckets cover client-observed end-to-end write latencies: 0.5 ms
// (loopback) through ~16 s (an unscaled WAN worst case with retries).
var writeBuckets = metrics.ExponentialBuckets(0.0005, 2, 15)

// NewNetworkWriter connects a writer to every store server of the cluster
// plus the client region's cache server.
func NewNetworkWriter(c *Cluster, region geo.RegionID) *NetworkWriter {
	stores := make(map[geo.RegionID]*RemoteStore, len(c.storeSrvs))
	for r, srv := range c.storeSrvs {
		stores[r] = NewRemoteStore(srv.Addr())
	}
	sampler := netsim.NewSampler(c.cfg.Matrix, 0, 1)
	if c.cfg.Schedule != nil {
		sampler.SetChaos(netsim.RealClock{}, c.cfg.Schedule)
	}
	return &NetworkWriter{
		cluster: c,
		region:  region,
		clock:   hlc.New(),
		stores:  stores,
		cacheC:  NewRemoteCache(c.CacheAddr()),
		sampler: sampler,
		hist: c.reg.NewHistogramVec(metrics.NameClientWriteSeconds,
			"Client-observed end-to-end latency of one versioned write or delete in seconds.",
			writeBuckets, "region").With(region.String()),
	}
}

// SetClock swaps the writer's physical time source — the virtual-time hook
// for deterministic tests; nil restores the wall clock.
func (w *NetworkWriter) SetClock(now func() time.Time) { w.clock.SetClock(now) }

// Clock exposes the writer's hybrid clock so collocated components (a
// reader observing remote versions, tests) can merge timestamps into it.
func (w *NetworkWriter) Clock() *hlc.Clock { return w.clock }

// Close drops every pooled connection.
func (w *NetworkWriter) Close() {
	w.cacheC.Close()
	for _, s := range w.stores {
		s.Close()
	}
}

// delay sleeps for the scaled wide-area latency of one chunk write, the
// same client-side injection the read path uses.
func (w *NetworkWriter) delay(to geo.RegionID) {
	if w.cluster.cfg.DelayScale <= 0 {
		return
	}
	lat := w.sampler.Chunk(w.region, to)
	time.Sleep(time.Duration(float64(lat) * w.cluster.cfg.DelayScale))
}

// Write erasure-codes the object, writes every chunk through to its placed
// region under a fresh write version, and invalidates the local cache at
// that version. It returns the version, which callers feed into a Session
// for read-your-writes. Chunks write to all regions in parallel (one
// goroutine per region, chunks of a region sequential on its pooled
// connections); the slowest region bounds the write, like the paper's
// full-stripe backend writes. A region refusing the write as stale aborts
// with *backend.StaleError — a newer write already won everywhere it
// landed, so finishing this one could only tear it.
func (w *NetworkWriter) Write(key string, data []byte) (uint64, error) {
	start := time.Now()
	ver := uint64(w.clock.Now())
	chunks, err := w.cluster.codec.Split(data)
	if err != nil {
		return 0, err
	}
	locs := w.cluster.cluster.Placement().Locate(key, len(chunks))

	byRegion := make(map[geo.RegionID][]int)
	for idx := range chunks {
		byRegion[locs[idx]] = append(byRegion[locs[idx]], idx)
	}
	errs := make(chan error, len(byRegion))
	var wg sync.WaitGroup
	for region, idxs := range byRegion {
		wg.Add(1)
		go func(region geo.RegionID, idxs []int) {
			defer wg.Done()
			w.delay(region)
			for _, idx := range idxs {
				if err := w.stores[region].PutVer(backend.ChunkID{Key: key, Index: idx}, chunks[idx], ver); err != nil {
					errs <- fmt.Errorf("live: write %q chunk %d to %v: %w", key, idx, region, err)
					return
				}
			}
			errs <- nil
		}(region, idxs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}

	// Local invalidation: raise the cache server's floor so pre-write
	// chunks are dropped now rather than at the next digest. Best-effort
	// stale refusal is fine — it means a newer write already invalidated.
	if err := w.cacheC.DeleteObjectVer(key, ver); err != nil {
		var stale *backend.StaleError
		if !errors.As(err, &stale) {
			return 0, fmt.Errorf("live: invalidate %q: %w", key, err)
		}
	}
	w.observe(start)
	return ver, nil
}

// Delete removes the object from every region under a fresh version,
// persisting tombstone floors so a zombie write-back of the old data is
// refused, and invalidates the local cache. It returns the delete's
// version.
func (w *NetworkWriter) Delete(key string) (uint64, error) {
	start := time.Now()
	ver := uint64(w.clock.Now())
	regions := w.cluster.cfg.Regions
	errs := make(chan error, len(regions))
	var wg sync.WaitGroup
	for _, region := range regions {
		wg.Add(1)
		go func(region geo.RegionID) {
			defer wg.Done()
			w.delay(region)
			if err := w.stores[region].DeleteObjectVer(key, ver); err != nil {
				errs <- fmt.Errorf("live: delete %q in %v: %w", key, region, err)
				return
			}
			errs <- nil
		}(region)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if err := w.cacheC.DeleteObjectVer(key, ver); err != nil {
		var stale *backend.StaleError
		if !errors.As(err, &stale) {
			return 0, fmt.Errorf("live: invalidate %q: %w", key, err)
		}
	}
	w.observe(start)
	return ver, nil
}

// WriteSession is Write plus the session bookkeeping: the session's floor
// for the key rises to the write's version, so the session's next read
// refuses anything older.
func (w *NetworkWriter) WriteSession(key string, data []byte, sess *Session) (uint64, error) {
	ver, err := w.Write(key, data)
	if err == nil && sess != nil {
		sess.Observe(key, ver)
	}
	return ver, err
}

func (w *NetworkWriter) observe(start time.Time) {
	if w.hist != nil {
		w.hist.Observe(time.Since(start).Seconds())
	}
}
