package live

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/agardist/agar/internal/wire"
)

// pipelineWindow is the default bound on frames a PipelinedCache keeps in
// flight on its connection. It matches the server's pipelineDepth, so a
// single adapter can fill a connection's whole server-side window.
const pipelineWindow = 64

// PendingReply is one in-flight pipelined call's future. Wait blocks until
// the reply (or the connection's failure) arrives; replies resolve in send
// order, the wire contract both dispatch modes guarantee.
type PendingReply struct {
	done chan struct{}
	resp wire.Message
	err  error
}

// Wait blocks for the reply.
func (p *PendingReply) Wait() (wire.Message, error) {
	<-p.done
	return p.resp, p.err
}

// PipelinedCache is the opt-in pipelining client adapter for a cache
// server: instead of the request/response rhythm RemoteCache's pooled
// connections produce — which the server's adaptive fast path serves
// inline — it sends frames back to back on one connection and matches
// replies to requests in FIFO order. Keeping several frames in flight is
// what actually engages the server's queued shard-dispatch path (per-shard
// worker overlap, pooled reply buffers, the reply-order writer), and it is
// how the open-loop load generator drives a server to saturation without a
// thread per in-flight op.
//
// Go issues a call without blocking for its reply (beyond the in-flight
// window, which applies back-pressure); the returned PendingReply resolves
// when the reply frame arrives. The synchronous helpers (Get, GetMulti,
// Put, PutMulti) are Go plus Wait. An adapter is safe for concurrent use;
// a transport error fails every in-flight and subsequent call, and Close
// releases the connection.
type PipelinedCache struct {
	conn net.Conn
	// wmu serializes frame writes; the in-order pend queue is filled under
	// the same lock, so queue order is exactly wire order.
	wmu sync.Mutex
	// emu guards werr alone and is never held across a blocking call, so
	// the reader can mark the adapter broken while a writer is stuck —
	// that mark (plus closing the conn) is what un-sticks the writer.
	emu       sync.Mutex
	werr      error
	pend      chan *PendingReply
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// loadErr reports the sticky transport error, if any.
func (p *PipelinedCache) loadErr() error {
	p.emu.Lock()
	defer p.emu.Unlock()
	return p.werr
}

// storeErr records the first transport error; later ones lose.
func (p *PipelinedCache) storeErr(err error) {
	p.emu.Lock()
	if p.werr == nil {
		p.werr = err
	}
	p.emu.Unlock()
}

// DialPipelined connects a pipelining adapter to the cache server at addr
// with the given in-flight window (0 means the default, which matches the
// server's per-connection pipeline depth).
func DialPipelined(addr string, window int) (*PipelinedCache, error) {
	if window <= 0 {
		window = pipelineWindow
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	p := &PipelinedCache{conn: conn, pend: make(chan *PendingReply, window)}
	p.wg.Add(1)
	go p.readLoop()
	return p, nil
}

// readLoop resolves pending calls in FIFO order — the server answers in
// request order on one connection, so the head of the queue always owns
// the next frame. The reader owns resolution of everything that enters
// the queue: after a transport error it keeps consuming entries, failing
// each immediately, until Close closes the queue — so a call that was
// mid-enqueue when the connection broke still resolves.
func (p *PipelinedCache) readLoop() {
	defer p.wg.Done()
	br := bufio.NewReaderSize(p.conn, connReadBuffer)
	var failed error
	for pr := range p.pend {
		if failed != nil {
			pr.err = failed
			close(pr.done)
			continue
		}
		resp, err := wire.Read(br)
		if err != nil {
			failed = fmt.Errorf("live: pipelined read: %w", err)
			p.fail(failed)
			pr.err = failed
			close(pr.done)
			continue
		}
		if resp.Header.Op == wire.OpError {
			pr.err = fmt.Errorf("wire: remote error: %s", resp.Header.Error)
		}
		pr.resp = resp
		close(pr.done)
	}
}

// fail marks the adapter broken so later Go calls refuse immediately. It
// must not touch wmu: a writer may hold it while blocked on the window,
// waiting for this very reader to drain.
func (p *PipelinedCache) fail(err error) {
	p.storeErr(err)
	p.conn.Close()
}

// Go sends one request frame and returns its in-order reply future. It
// blocks only while the in-flight window is full or another goroutine is
// mid-write — never for the server's reply.
func (p *PipelinedCache) Go(req wire.Message) *PendingReply {
	pr := &PendingReply{done: make(chan struct{})}
	p.wmu.Lock()
	if err := p.loadErr(); err != nil {
		p.wmu.Unlock()
		pr.err = err
		close(pr.done)
		return pr
	}
	// Reserve the reply slot before writing: the reader must know about
	// the frame the moment its reply can exist. The buffered channel is
	// the in-flight window; blocking here is the back-pressure.
	p.pend <- pr
	if err := wire.Write(p.conn, req); err != nil {
		p.storeErr(fmt.Errorf("live: pipelined write: %w", err))
		p.wmu.Unlock()
		p.conn.Close()
		return pr // the reader fails it with the read error
	}
	p.wmu.Unlock()
	return pr
}

// Get fetches one cached chunk (synchronous form of Go).
func (p *PipelinedCache) Get(key string, index int) ([]byte, error) {
	resp, err := p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: key, Index: index}}).Wait()
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, fmt.Errorf("live: pipelined get %s/%d: not found", key, index)
	}
	return resp.Body, nil
}

// GoMGet issues a batched read of several chunks of one key.
func (p *PipelinedCache) GoMGet(key string, indices []int) *PendingReply {
	return p.Go(wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices}})
}

// GetMulti fetches several chunks of one key, like RemoteCache.GetMulti,
// over the pipelined connection.
func (p *PipelinedCache) GetMulti(key string, indices []int) (map[int][]byte, error) {
	resp, err := p.GoMGet(key, indices).Wait()
	if err != nil {
		return nil, err
	}
	return wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
}

// Put inserts one chunk.
func (p *PipelinedCache) Put(key string, index int, data []byte) error {
	_, err := p.Go(wire.Message{Header: wire.Header{Op: wire.OpPut, Key: key, Index: index}, Body: data}).Wait()
	return err
}

// PutMulti inserts several chunks of one key in one frame.
func (p *PipelinedCache) PutMulti(key string, chunks map[int][]byte) error {
	indices, sizes, body, err := wire.PackBatch(chunks)
	if err != nil {
		return err
	}
	_, err = p.Go(wire.Message{
		Header: wire.Header{Op: wire.OpMPut, Key: key, Indices: indices, Sizes: sizes},
		Body:   body,
	}).Wait()
	return err
}

// Close tears the connection down and fails any in-flight calls. The
// connection closes before the write lock is taken: that kicks the reader
// into its drain-and-fail mode, which frees any Go blocked on a full
// window (it holds the write lock while it waits), which in turn lets
// Close acquire the lock and retire the queue.
func (p *PipelinedCache) Close() {
	p.closeOnce.Do(func() {
		p.conn.Close()
		p.storeErr(net.ErrClosed)
		// Taking wmu waits out any writer (the drain triggered above frees
		// a blocked one); with it held, nothing can enqueue, so the queue
		// can close and the reader can retire.
		p.wmu.Lock()
		close(p.pend)
		p.wmu.Unlock()
	})
	p.wg.Wait()
}
