package live

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/wire"
)

// Dispatch selects how a framed-TCP server schedules decoded request frames
// onto the state they touch.
//
// DispatchConn is the classic memcached-style loop: each connection's
// goroutine decodes, executes and answers its own frames serially, and
// concurrency exists only across connections. DispatchShard decouples
// transport from execution: connection goroutines only decode frames and
// enqueue ops onto per-shard worker queues (one worker per cache shard,
// routed by the same power-of-two stripe hash the cache itself uses), so
// two connections hitting different shards never serialize behind one
// another, and a batched mget/mput is split per shard, executed by the
// shard workers in parallel, and re-merged in ascending chunk order for the
// reply. Replies always leave a connection in request order, so the wire
// contract is identical in both modes.
type Dispatch string

// Dispatch modes. The zero value resolves to DispatchShard.
const (
	// DispatchShard enqueues ops onto per-shard worker pools (default).
	DispatchShard Dispatch = "shard"
	// DispatchConn serializes each connection's ops on its own goroutine —
	// the pre-dispatch baseline, kept for paired benchmarks.
	DispatchConn Dispatch = "conn"
)

// ParseDispatch resolves a -dispatch flag value; "" means DispatchShard.
func ParseDispatch(s string) (Dispatch, error) {
	switch Dispatch(s) {
	case "", DispatchShard:
		return DispatchShard, nil
	case DispatchConn:
		return DispatchConn, nil
	}
	return "", fmt.Errorf("live: unknown dispatch mode %q (want conn|shard)", s)
}

// String renders the mode with the default applied.
func (d Dispatch) String() string {
	if d == "" {
		return string(DispatchShard)
	}
	return string(d)
}

// part is one per-shard fragment of a split batch frame.
type part struct {
	shard int
	req   wire.Message
}

// mergeFunc folds the per-part responses of a split batch (indexed like the
// parts slice) back into the single reply the client sees.
type mergeFunc func(resps []wire.Message) wire.Message

// router tells a shard-dispatching server how ops map onto shards. The
// routing must agree with the storage layer's own striping — the cache
// server routes with cache.StripeIndex, the function the cache's shard
// locks hash with — so the worker that dequeues an op is the only worker
// touching that op's shard.
type router interface {
	// shards returns the worker-pool width (one worker per shard).
	shards() int
	// route returns the shard of an op that lands entirely on one shard
	// (including batches whose chunks all stripe to it). ok=false marks
	// either a control op (stats, digests, snapshots, object-level ops) or
	// a batch that needs splitting.
	route(h wire.Header) (shard int, ok bool)
	// splittable reports whether the op is a batch kind split may fan out —
	// a cheap header-only check; whether a particular frame actually splits
	// is split's decision.
	splittable(h wire.Header) bool
	// split breaks a multi-shard batch frame into per-shard parts and
	// returns the merge that reassembles the reply. ok=false hands the
	// frame to route/control handling — including malformed batches, which
	// fall through so the ordinary handler can produce its usual error.
	split(m wire.Message) (parts []part, merge mergeFunc, ok bool)
}

// dispatchQueueDepth bounds each shard worker's queue. A full queue blocks
// the enqueueing connection goroutine — back-pressure on the socket, the
// same way a busy single-threaded memcached applies it — rather than
// growing without bound.
const dispatchQueueDepth = 128

// task is one unit of shard-worker work: a request, where its reply goes,
// and — for split-batch parts — the shared fan-in state. Tasks travel by
// value through the worker channels, so enqueueing an op allocates nothing
// (the old closure-per-op queues allocated one closure plus captures per
// frame; at saturation that alloc was the dispatch layer's whole profile).
type task struct {
	req   wire.Message
	reply chan<- wire.Message
	// t0 is the enqueue time for the queue-wait histogram; zero when the
	// server runs uninstrumented (time.Now stays off the hot path).
	t0  time.Time
	fan *fanState
	fi  int
}

// fanState is the shared countdown of one split batch: the last part to
// finish merges the fragments and sends the reply. One allocation per
// split batch, instead of the former one closure per part. op, tid, t0
// and anns carry the whole batch's identity for tracing and the flight
// recorder: each part writes its span annotations into its own anns slot
// (ordered before the countdown, like resps), and finishFan flattens them
// onto the merged reply with p<part>/ prefixes.
type fanState struct {
	resps     []wire.Message
	remaining atomic.Int32
	merge     mergeFunc
	reply     chan<- wire.Message
	op        string
	tid       string
	t0        time.Time
	anns      [][]trace.Annotation
}

// dispatcher owns one worker goroutine per shard, each draining its own
// bounded queue. Ops for one shard execute in enqueue order on that shard's
// worker; ops for different shards execute concurrently.
type dispatcher struct {
	handle handler
	rt     router
	queues []chan task
	wg     sync.WaitGroup
	// gauge tracks tasks enqueued but not yet finished — the
	// dispatch_queue_depth gauge OpStats reports. Shared with the handler,
	// which only reads it.
	gauge    *atomic.Int64
	stopOnce sync.Once
	// sm, when non-nil, splits every op's wall time into queue wait
	// (enqueue to worker pickup) and execution. Nil — the uninstrumented
	// baseline — keeps time.Now off the hot path entirely, unless a frame
	// itself carries trace context or rec is set.
	sm *serverMetrics
	// rec, when non-nil, is the server's flight recorder: every finished
	// op is offered to it, traced or not.
	rec *trace.Recorder
	// parallel records whether the runtime has cores to run shard workers
	// on. Without them, fanning a fast-path batch out over workers costs
	// scheduler hops and buys nothing, so dispatchSync stays inline.
	parallel bool
}

// newDispatcher starts the per-shard workers.
func newDispatcher(h handler, rt router, gauge *atomic.Int64, sm *serverMetrics, rec *trace.Recorder) *dispatcher {
	n := rt.shards()
	if n < 1 {
		n = 1
	}
	d := &dispatcher{handle: h, rt: rt, gauge: gauge, sm: sm, rec: rec, queues: make([]chan task, n),
		parallel: runtime.GOMAXPROCS(0) > 1}
	for i := range d.queues {
		d.queues[i] = make(chan task, dispatchQueueDepth)
		d.wg.Add(1)
		go d.worker(d.queues[i])
	}
	return d
}

func (d *dispatcher) worker(q chan task) {
	defer d.wg.Done()
	for t := range q {
		d.run(t)
		d.gauge.Add(-1)
	}
}

// run executes one dequeued task: handle, observe, release the request's
// pooled frame, and deliver the response — directly for routed ops, via
// the fan-in countdown for split-batch parts (the atomic orders every
// fragment write before the merge that reads them; each part observes its
// own queue wait and execution under the batch's opcode).
//
// Instrumentation engages when the server has metrics, has a flight
// recorder, or the frame itself carries trace context; otherwise the task
// runs with no time.Now at all — the paired-benchmark baseline. A traced
// op's measured intervals come back as reply annotations: "queue" (enqueue
// to worker pickup) and "exec" (handler time), offsets relative to the
// task's enqueue; a fan part parks its annotations on the fan state for
// finishFan to flatten.
func (d *dispatcher) run(t task) {
	traced := t.req.Header.Trace != ""
	if d.sm == nil && d.rec == nil && !traced {
		resp := d.handle(t.req)
		t.req.Release()
		if t.fan != nil {
			t.fan.resps[t.fi] = resp
			if t.fan.remaining.Add(-1) == 0 {
				t.fan.reply <- t.fan.merge(t.fan.resps)
			}
			return
		}
		t.reply <- resp
		return
	}
	// Header strings are decoded copies, safe to hold past Release.
	op, tid := t.req.Header.Op, t.req.Header.Trace
	start := time.Now()
	resp := d.handle(t.req)
	exec := time.Since(start)
	var wait time.Duration
	if !t.t0.IsZero() {
		wait = start.Sub(t.t0)
	}
	d.sm.observe(op, wait, exec, tid)
	t.req.Release()
	var anns []trace.Annotation
	if traced || d.rec != nil {
		anns = []trace.Annotation{
			{Name: "queue", OffUS: 0, DurUS: wait.Microseconds()},
			{Name: "exec", OffUS: wait.Microseconds(), DurUS: exec.Microseconds()},
		}
	}
	if t.fan != nil {
		t.fan.resps[t.fi] = resp
		t.fan.anns[t.fi] = anns
		if t.fan.remaining.Add(-1) == 0 {
			d.finishFan(t.fan)
		}
		return
	}
	if traced {
		resp.Header.Anns = anns
	}
	if d.rec != nil {
		d.rec.Observe(op, wait+exec, tid, respErr(resp), anns)
	}
	t.reply <- resp
}

// finishFan merges a completed split batch and reports it as one op: the
// parts' annotations flatten onto the merged reply prefixed p<part>/ (the
// merge builds a fresh header, so part annotations must ride the fan
// state, not the fragments), and the recorder sees the batch once, with
// its full fan-out-to-merge duration.
func (d *dispatcher) finishFan(fs *fanState) {
	resp := fs.merge(fs.resps)
	traced := fs.tid != ""
	if traced || d.rec != nil {
		var flat []trace.Annotation
		for fi, anns := range fs.anns {
			for _, a := range anns {
				a.Name = fmt.Sprintf("p%d/%s", fi, a.Name)
				flat = append(flat, a)
			}
		}
		if traced {
			resp.Header.Anns = flat
		}
		if d.rec != nil {
			var dur time.Duration
			if !fs.t0.IsZero() {
				dur = time.Since(fs.t0)
			}
			d.rec.Observe(fs.op, dur, fs.tid, respErr(resp), flat)
		}
	}
	fs.reply <- resp
}

// respErr extracts a reply's error message for the flight recorder ("" for
// non-error replies).
func respErr(resp wire.Message) string {
	if resp.Header.Op == wire.OpError {
		return resp.Header.Error
	}
	return ""
}

// runInline executes one request on the caller's goroutine — the conn
// dispatch loop and both shard-dispatch inline paths share it. The op is
// handled, observed (a single "exec" annotation; inline ops never wait on
// a queue), offered to the flight recorder, and its reply annotated when
// the request carried trace context. With no metrics, no recorder, and no
// trace context the call is exactly the old fast path: handle and release,
// no clock reads.
func runInline(h handler, sm *serverMetrics, rec *trace.Recorder, req wire.Message) wire.Message {
	traced := req.Header.Trace != ""
	if sm == nil && rec == nil && !traced {
		resp := h(req)
		req.Release()
		return resp
	}
	op, tid := req.Header.Op, req.Header.Trace
	start := time.Now()
	resp := h(req)
	exec := time.Since(start)
	sm.observe(op, 0, exec, tid)
	req.Release()
	var anns []trace.Annotation
	if traced || rec != nil {
		anns = []trace.Annotation{{Name: "exec", OffUS: 0, DurUS: exec.Microseconds()}}
	}
	if traced {
		resp.Header.Anns = anns
	}
	if rec != nil {
		rec.Observe(op, exec, tid, respErr(resp), anns)
	}
	return resp
}

func (d *dispatcher) enqueue(shard int, t task) {
	d.gauge.Add(1)
	d.queues[shard] <- t
}

// dispatchSync executes one request on the caller's goroutine and returns
// its response — the fast path for a connection with nothing in flight,
// where queueing through a shard worker would only add scheduler hops.
// With cores to run workers on, multi-shard batches still fan out so
// their parts execute on different shards in parallel; on a single-core
// runtime (or for everything else) the op runs inline — the shard locks
// below the handler keep that exactly as safe as conn dispatch.
// dispatchSync consumes the request (its pooled frame is released once
// the handler or split no longer needs it).
func (d *dispatcher) dispatchSync(req wire.Message) wire.Message {
	if d.parallel && d.rt.splittable(req.Header) {
		if parts, merge, ok := d.rt.split(req); ok {
			// Fanned-out parts time themselves (queue wait included); no
			// outer observation, so a split batch is never double counted.
			// The parts carry copies, so the request frame releases now
			// (header strings are decoded copies and survive the release).
			h := req.Header
			req.Release()
			reply := make(chan wire.Message, 1)
			d.fanOut(h, parts, merge, reply)
			return <-reply
		}
	}
	return runInline(d.handle, d.sm, d.rec, req)
}

// dispatch schedules one decoded request and arranges for exactly one
// response on reply (buffered, so workers never block sending it).
func (d *dispatcher) dispatch(req wire.Message, reply chan<- wire.Message) {
	shard, routed := d.rt.route(req.Header)
	d.dispatchWith(req, reply, shard, routed)
}

// dispatchWith is dispatch with the route decision already made — the
// serve loop classifies each frame exactly once (route is per-chunk key
// hashing for batches, worth not repeating) and threads the result here.
// Ops the router declines entirely run synchronously on the caller's
// goroutine — the serve loop only sends control ops here after draining
// the connection, so execution order matches conn dispatch (a splittable
// frame that turns out malformed also lands here, but it touches no state
// and just produces its error reply). dispatchWith consumes the request.
func (d *dispatcher) dispatchWith(req wire.Message, reply chan<- wire.Message, shard int, routed bool) {
	if routed {
		t := task{req: req, reply: reply}
		if d.sm != nil || d.rec != nil || req.Header.Trace != "" {
			t.t0 = time.Now()
		}
		d.enqueue(shard, t)
		return
	}
	if parts, merge, ok := d.rt.split(req); ok {
		h := req.Header
		req.Release() // parts carry copies
		d.fanOut(h, parts, merge, reply)
		return
	}
	reply <- runInline(d.handle, d.sm, d.rec, req)
}

// fanOut runs a split batch's parts on their shard workers and has the last
// part to finish merge the fragments into the reply. A single-part split —
// every chunk on one shard after all — skips the fan-in state and merge
// entirely and completes inline on its shard worker: the part carries the
// whole batch, so its handler reply already has the merged framing. h is
// the original batch header, carrying the opcode and trace context the fan
// state reports under (the request frame itself is already released).
func (d *dispatcher) fanOut(h wire.Header, parts []part, merge mergeFunc, reply chan<- wire.Message) {
	var t0 time.Time
	if d.sm != nil || d.rec != nil || h.Trace != "" {
		t0 = time.Now()
	}
	if len(parts) == 1 {
		d.enqueue(parts[0].shard, task{req: parts[0].req, reply: reply, t0: t0})
		return
	}
	fs := &fanState{resps: make([]wire.Message, len(parts)), merge: merge, reply: reply,
		op: h.Op, tid: h.Trace, t0: t0, anns: make([][]trace.Annotation, len(parts))}
	fs.remaining.Store(int32(len(parts)))
	for i, p := range parts {
		d.enqueue(p.shard, task{req: p.req, fan: fs, fi: i, t0: t0})
	}
}

// stop closes the shard queues and waits for the workers to drain them.
// Callers must first ensure no goroutine will enqueue again (the server
// waits out its connection goroutines before stopping the dispatcher).
func (d *dispatcher) stop() {
	d.stopOnce.Do(func() {
		for _, q := range d.queues {
			close(q)
		}
	})
	d.wg.Wait()
}

// QueueDepth returns the tasks currently enqueued or executing across every
// shard queue — the dispatch_queue_depth gauge.
func (d *dispatcher) QueueDepth() int64 { return d.gauge.Load() }
