package live

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/agardist/agar/internal/wire"
)

// Dispatch selects how a framed-TCP server schedules decoded request frames
// onto the state they touch.
//
// DispatchConn is the classic memcached-style loop: each connection's
// goroutine decodes, executes and answers its own frames serially, and
// concurrency exists only across connections. DispatchShard decouples
// transport from execution: connection goroutines only decode frames and
// enqueue ops onto per-shard worker queues (one worker per cache shard,
// routed by the same power-of-two stripe hash the cache itself uses), so
// two connections hitting different shards never serialize behind one
// another, and a batched mget/mput is split per shard, executed by the
// shard workers in parallel, and re-merged in ascending chunk order for the
// reply. Replies always leave a connection in request order, so the wire
// contract is identical in both modes.
type Dispatch string

// Dispatch modes. The zero value resolves to DispatchShard.
const (
	// DispatchShard enqueues ops onto per-shard worker pools (default).
	DispatchShard Dispatch = "shard"
	// DispatchConn serializes each connection's ops on its own goroutine —
	// the pre-dispatch baseline, kept for paired benchmarks.
	DispatchConn Dispatch = "conn"
)

// ParseDispatch resolves a -dispatch flag value; "" means DispatchShard.
func ParseDispatch(s string) (Dispatch, error) {
	switch Dispatch(s) {
	case "", DispatchShard:
		return DispatchShard, nil
	case DispatchConn:
		return DispatchConn, nil
	}
	return "", fmt.Errorf("live: unknown dispatch mode %q (want conn|shard)", s)
}

// String renders the mode with the default applied.
func (d Dispatch) String() string {
	if d == "" {
		return string(DispatchShard)
	}
	return string(d)
}

// part is one per-shard fragment of a split batch frame.
type part struct {
	shard int
	req   wire.Message
}

// mergeFunc folds the per-part responses of a split batch (indexed like the
// parts slice) back into the single reply the client sees.
type mergeFunc func(resps []wire.Message) wire.Message

// router tells a shard-dispatching server how ops map onto shards. The
// routing must agree with the storage layer's own striping — the cache
// server routes with cache.StripeIndex, the function the cache's shard
// locks hash with — so the worker that dequeues an op is the only worker
// touching that op's shard.
type router interface {
	// shards returns the worker-pool width (one worker per shard).
	shards() int
	// route returns the shard of an op that lands entirely on one shard
	// (including batches whose chunks all stripe to it). ok=false marks
	// either a control op (stats, digests, snapshots, object-level ops) or
	// a batch that needs splitting.
	route(h wire.Header) (shard int, ok bool)
	// splittable reports whether the op is a batch kind split may fan out —
	// a cheap header-only check; whether a particular frame actually splits
	// is split's decision.
	splittable(h wire.Header) bool
	// split breaks a multi-shard batch frame into per-shard parts and
	// returns the merge that reassembles the reply. ok=false hands the
	// frame to route/control handling — including malformed batches, which
	// fall through so the ordinary handler can produce its usual error.
	split(m wire.Message) (parts []part, merge mergeFunc, ok bool)
}

// dispatchQueueDepth bounds each shard worker's queue. A full queue blocks
// the enqueueing connection goroutine — back-pressure on the socket, the
// same way a busy single-threaded memcached applies it — rather than
// growing without bound.
const dispatchQueueDepth = 128

// task is one unit of shard-worker work: a request, where its reply goes,
// and — for split-batch parts — the shared fan-in state. Tasks travel by
// value through the worker channels, so enqueueing an op allocates nothing
// (the old closure-per-op queues allocated one closure plus captures per
// frame; at saturation that alloc was the dispatch layer's whole profile).
type task struct {
	req   wire.Message
	reply chan<- wire.Message
	// t0 is the enqueue time for the queue-wait histogram; zero when the
	// server runs uninstrumented (time.Now stays off the hot path).
	t0  time.Time
	fan *fanState
	fi  int
}

// fanState is the shared countdown of one split batch: the last part to
// finish merges the fragments and sends the reply. One allocation per
// split batch, instead of the former one closure per part.
type fanState struct {
	resps     []wire.Message
	remaining atomic.Int32
	merge     mergeFunc
	reply     chan<- wire.Message
}

// dispatcher owns one worker goroutine per shard, each draining its own
// bounded queue. Ops for one shard execute in enqueue order on that shard's
// worker; ops for different shards execute concurrently.
type dispatcher struct {
	handle handler
	rt     router
	queues []chan task
	wg     sync.WaitGroup
	// gauge tracks tasks enqueued but not yet finished — the
	// dispatch_queue_depth gauge OpStats reports. Shared with the handler,
	// which only reads it.
	gauge    *atomic.Int64
	stopOnce sync.Once
	// sm, when non-nil, splits every op's wall time into queue wait
	// (enqueue to worker pickup) and execution. Nil — the uninstrumented
	// baseline — keeps time.Now off the hot path entirely.
	sm *serverMetrics
	// parallel records whether the runtime has cores to run shard workers
	// on. Without them, fanning a fast-path batch out over workers costs
	// scheduler hops and buys nothing, so dispatchSync stays inline.
	parallel bool
}

// newDispatcher starts the per-shard workers.
func newDispatcher(h handler, rt router, gauge *atomic.Int64, sm *serverMetrics) *dispatcher {
	n := rt.shards()
	if n < 1 {
		n = 1
	}
	d := &dispatcher{handle: h, rt: rt, gauge: gauge, sm: sm, queues: make([]chan task, n),
		parallel: runtime.GOMAXPROCS(0) > 1}
	for i := range d.queues {
		d.queues[i] = make(chan task, dispatchQueueDepth)
		d.wg.Add(1)
		go d.worker(d.queues[i])
	}
	return d
}

func (d *dispatcher) worker(q chan task) {
	defer d.wg.Done()
	for t := range q {
		d.run(t)
		d.gauge.Add(-1)
	}
}

// run executes one dequeued task: handle, observe, release the request's
// pooled frame, and deliver the response — directly for routed ops, via
// the fan-in countdown for split-batch parts (the atomic orders every
// fragment write before the merge that reads them; each part observes its
// own queue wait and execution under the batch's opcode).
func (d *dispatcher) run(t task) {
	var start time.Time
	if d.sm != nil {
		start = time.Now()
	}
	resp := d.handle(t.req)
	if d.sm != nil {
		var wait time.Duration
		if !t.t0.IsZero() {
			wait = start.Sub(t.t0)
		}
		d.sm.observe(t.req.Header.Op, wait, time.Since(start))
	}
	t.req.Release()
	if t.fan != nil {
		t.fan.resps[t.fi] = resp
		if t.fan.remaining.Add(-1) == 0 {
			t.fan.reply <- t.fan.merge(t.fan.resps)
		}
		return
	}
	t.reply <- resp
}

func (d *dispatcher) enqueue(shard int, t task) {
	d.gauge.Add(1)
	d.queues[shard] <- t
}

// dispatchSync executes one request on the caller's goroutine and returns
// its response — the fast path for a connection with nothing in flight,
// where queueing through a shard worker would only add scheduler hops.
// With cores to run workers on, multi-shard batches still fan out so
// their parts execute on different shards in parallel; on a single-core
// runtime (or for everything else) the op runs inline — the shard locks
// below the handler keep that exactly as safe as conn dispatch.
// dispatchSync consumes the request (its pooled frame is released once
// the handler or split no longer needs it).
func (d *dispatcher) dispatchSync(req wire.Message) wire.Message {
	if d.parallel && d.rt.splittable(req.Header) {
		if parts, merge, ok := d.rt.split(req); ok {
			// Fanned-out parts time themselves (queue wait included); no
			// outer observation, so a split batch is never double counted.
			// The parts carry copies, so the request frame releases now.
			req.Release()
			reply := make(chan wire.Message, 1)
			d.fanOut(parts, merge, reply)
			return <-reply
		}
	}
	var start time.Time
	if d.sm != nil {
		start = time.Now()
	}
	resp := d.handle(req)
	if d.sm != nil {
		d.sm.observe(req.Header.Op, 0, time.Since(start))
	}
	req.Release()
	return resp
}

// dispatch schedules one decoded request and arranges for exactly one
// response on reply (buffered, so workers never block sending it).
func (d *dispatcher) dispatch(req wire.Message, reply chan<- wire.Message) {
	shard, routed := d.rt.route(req.Header)
	d.dispatchWith(req, reply, shard, routed)
}

// dispatchWith is dispatch with the route decision already made — the
// serve loop classifies each frame exactly once (route is per-chunk key
// hashing for batches, worth not repeating) and threads the result here.
// Ops the router declines entirely run synchronously on the caller's
// goroutine — the serve loop only sends control ops here after draining
// the connection, so execution order matches conn dispatch (a splittable
// frame that turns out malformed also lands here, but it touches no state
// and just produces its error reply). dispatchWith consumes the request.
func (d *dispatcher) dispatchWith(req wire.Message, reply chan<- wire.Message, shard int, routed bool) {
	if routed {
		t := task{req: req, reply: reply}
		if d.sm != nil {
			t.t0 = time.Now()
		}
		d.enqueue(shard, t)
		return
	}
	if parts, merge, ok := d.rt.split(req); ok {
		req.Release() // parts carry copies
		d.fanOut(parts, merge, reply)
		return
	}
	var start time.Time
	if d.sm != nil {
		start = time.Now()
	}
	resp := d.handle(req)
	if d.sm != nil {
		d.sm.observe(req.Header.Op, 0, time.Since(start))
	}
	req.Release()
	reply <- resp
}

// fanOut runs a split batch's parts on their shard workers and has the last
// part to finish merge the fragments into the reply. A single-part split —
// every chunk on one shard after all — skips the fan-in state and merge
// entirely and completes inline on its shard worker: the part carries the
// whole batch, so its handler reply already has the merged framing.
func (d *dispatcher) fanOut(parts []part, merge mergeFunc, reply chan<- wire.Message) {
	var t0 time.Time
	if d.sm != nil {
		t0 = time.Now()
	}
	if len(parts) == 1 {
		d.enqueue(parts[0].shard, task{req: parts[0].req, reply: reply, t0: t0})
		return
	}
	fs := &fanState{resps: make([]wire.Message, len(parts)), merge: merge, reply: reply}
	fs.remaining.Store(int32(len(parts)))
	for i, p := range parts {
		d.enqueue(p.shard, task{req: p.req, fan: fs, fi: i, t0: t0})
	}
}

// stop closes the shard queues and waits for the workers to drain them.
// Callers must first ensure no goroutine will enqueue again (the server
// waits out its connection goroutines before stopping the dispatcher).
func (d *dispatcher) stop() {
	d.stopOnce.Do(func() {
		for _, q := range d.queues {
			close(q)
		}
	})
	d.wg.Wait()
}

// QueueDepth returns the tasks currently enqueued or executing across every
// shard queue — the dispatch_queue_depth gauge.
func (d *dispatcher) QueueDepth() int64 { return d.gauge.Load() }
