package core

import (
	"sync"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

// NodeParams configures an Agar node.
type NodeParams struct {
	// Region is where this node runs.
	Region geo.RegionID
	// Regions is the full topology.
	Regions []geo.RegionID
	// Placement maps chunks onto regions.
	Placement geo.Placement
	// K and M are the erasure-code parameters.
	K, M int
	// CacheBytes bounds the node's cache.
	CacheBytes int64
	// ChunkBytes is the size of one chunk, used to express the cache
	// capacity in slots for the knapsack.
	ChunkBytes int64
	// ReconfigPeriod is how often the cache manager recomputes the
	// configuration; the paper's evaluation uses 30 seconds.
	ReconfigPeriod time.Duration
	// Alpha is the popularity EWMA coefficient (default 0.8).
	Alpha float64
	// CacheLatency is the local cache access time for option valuation.
	CacheLatency time.Duration
	// WeightGrid, Solver and EarlyStop forward to ManagerParams.
	WeightGrid []int
	Solver     Solver
	EarlyStop  int
	// ApproxMonitor switches the request monitor to the TinyLFU-style
	// approximate implementation; MaxTrackedKeys bounds its candidate
	// table (default 1024).
	ApproxMonitor  bool
	MaxTrackedKeys int
	// CacheShards overrides the node cache's shard count (rounded up to a
	// power of two). Zero picks automatically from the slot count: small
	// caches stay on one shard so the knapsack configuration is never
	// perturbed by per-shard eviction, large caches stripe for fan-in.
	CacheShards int
}

// Node is one region's Agar deployment (§III, Figure 3): the request
// monitor, region manager, cache manager and cache, wired together. Reads
// flow through HandleRead; reconfiguration is driven either manually
// (MaybeReconfigure, for simulated time) or by Run (wall-clock ticker).
type Node struct {
	params  NodeParams
	monitor PopularitySource
	regions *RegionManager
	manager *CacheManager
	store   *cache.Cache

	mu         sync.Mutex
	lastReconf time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// NewNode builds an Agar node. The cache runs under LRU with an admission
// filter: only chunks in the active knapsack configuration are admitted
// (clients write them per the hints they receive), while chunks that left
// the configuration age out of the LRU tail — the same division of labour
// as the paper's memcached-backed prototype.
func NewNode(params NodeParams) *Node {
	if params.K <= 0 || params.M < 0 {
		panic("core: node needs valid erasure parameters")
	}
	if params.ChunkBytes <= 0 {
		panic("core: node needs positive chunk size")
	}
	if params.Alpha == 0 {
		params.Alpha = DefaultAlpha
	}
	if params.ReconfigPeriod <= 0 {
		params.ReconfigPeriod = 30 * time.Second
	}
	shards := params.CacheShards
	if shards <= 0 {
		shards = defaultCacheShards(params.CacheBytes / params.ChunkBytes)
	}
	store := cache.NewSharded(maxInt64(params.CacheBytes, 1), shards,
		func() cache.Policy { return cache.NewLRU() })
	var monitor PopularitySource
	if params.ApproxMonitor {
		monitor = NewApproxMonitor(params.Alpha, params.MaxTrackedKeys)
	} else {
		monitor = NewMonitor(params.Alpha)
	}
	regions := NewRegionManager(params.Region, params.Regions, params.Placement, params.K+params.M)
	slots := int(params.CacheBytes / params.ChunkBytes)
	manager := NewCacheManager(ManagerParams{
		K:            params.K,
		CacheSlots:   slots,
		WeightGrid:   params.WeightGrid,
		CacheLatency: params.CacheLatency,
		Solver:       params.Solver,
		EarlyStop:    params.EarlyStop,
	}, monitor, regions, store)
	// Until the first reconfiguration nothing is admitted: the cache is
	// governed strictly by the active (initially empty) configuration.
	store.SetAdmission(func(cache.EntryID) bool { return false })
	return &Node{
		params:  params,
		monitor: monitor,
		regions: regions,
		manager: manager,
		store:   store,
		stopCh:  make(chan struct{}),
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// defaultCacheShards picks the node cache's shard count from its slot
// count. The knapsack manager plans contents that fill capacity exactly,
// so any per-shard budget sees some hash imbalance: striping a cache of S
// slots k ways churns on the order of sqrt(S) configured chunks per
// reconfiguration (the overfull shards' excess), which self-heals — the
// evicted chunks re-fill on their next read — but costs hit ratio.
// Below 1024 slots the cache therefore stays on one shard (exact global
// LRU, the semantics the paper's evaluation-scale runs assume); larger
// caches stripe up to 16 ways with at least 512 slots per shard, keeping
// the expected churn around one percent of contents in exchange for lock
// striping under fan-in.
func defaultCacheShards(slots int64) int {
	n := 1
	for slots/int64(n*2) >= 512 && n < 16 {
		n *= 2
	}
	return n
}

// Monitor exposes the node's exact request monitor, or nil when the node
// runs the approximate one (use Popularity for the common interface).
func (n *Node) Monitor() *Monitor {
	m, _ := n.monitor.(*Monitor)
	return m
}

// Popularity exposes the node's popularity source.
func (n *Node) Popularity() PopularitySource { return n.monitor }

// RegionManager exposes the node's region manager.
func (n *Node) RegionManager() *RegionManager { return n.regions }

// Manager exposes the node's cache manager.
func (n *Node) Manager() *CacheManager { return n.manager }

// Cache exposes the node's chunk cache.
func (n *Node) Cache() *cache.Cache { return n.store }

// Region returns the node's region.
func (n *Node) Region() geo.RegionID { return n.params.Region }

// HandleRead is the per-request fast path (§III-b): record the access and
// return the caching hint for the key.
func (n *Node) HandleRead(key string) Hint {
	n.monitor.Record(key)
	return n.manager.HintFor(key)
}

// MaybeReconfigure reconfigures if at least one period has elapsed since
// the previous run, using the caller's clock (virtual time in simulation).
// It reports whether a reconfiguration ran.
func (n *Node) MaybeReconfigure(now time.Time) bool {
	n.mu.Lock()
	due := n.lastReconf.IsZero() || now.Sub(n.lastReconf) >= n.params.ReconfigPeriod
	if due {
		n.lastReconf = now
	}
	n.mu.Unlock()
	if !due {
		return false
	}
	n.manager.Reconfigure()
	return true
}

// ForceReconfigure runs a reconfiguration immediately.
func (n *Node) ForceReconfigure() *Config {
	n.mu.Lock()
	n.lastReconf = time.Now()
	n.mu.Unlock()
	return n.manager.Reconfigure()
}

// Start launches periodic wall-clock reconfiguration in a background
// goroutine. It is idempotent; pair it with Stop.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ticker := time.NewTicker(n.params.ReconfigPeriod)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					n.manager.Reconfigure()
				case <-n.stopCh:
					return
				}
			}
		}()
	})
}

// Stop terminates the reconfiguration loop (if running) and waits for it to
// exit. Safe to call multiple times and without a prior Start.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.wg.Wait()
}
