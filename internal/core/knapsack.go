package core

import (
	"fmt"
	"sort"
	"strings"
)

// Config is a cache configuration: at most one caching option per object.
type Config struct {
	// Options maps object key to the option chosen for it.
	Options map[string]Option
	// Weight is the total chunk slots occupied.
	Weight int
	// Value is the total estimated latency improvement.
	Value float64
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{Options: make(map[string]Option)}
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	out := &Config{
		Options: make(map[string]Option, len(c.Options)),
		Weight:  c.Weight,
		Value:   c.Value,
	}
	for k, o := range c.Options {
		out.Options[k] = o
	}
	return out
}

// Add inserts an option for a key not yet present. It panics if the key is
// already configured — callers must guard, mirroring ADDTOCONFIG's
// precondition.
func (c *Config) Add(o Option) {
	if _, ok := c.Options[o.Key]; ok {
		panic(fmt.Sprintf("core: config already holds key %q", o.Key))
	}
	if o.Weight == 0 {
		return
	}
	c.Options[o.Key] = o
	c.Weight += o.Weight
	c.Value += o.Value
}

// Replace swaps the option stored for old.Key with repl (which may be the
// empty option, deleting the key).
func (c *Config) Replace(oldKey string, repl Option) {
	old, ok := c.Options[oldKey]
	if !ok {
		panic(fmt.Sprintf("core: config does not hold key %q", oldKey))
	}
	c.Weight -= old.Weight
	c.Value -= old.Value
	delete(c.Options, oldKey)
	if repl.Weight > 0 {
		c.Options[repl.Key] = repl
		c.Weight += repl.Weight
		c.Value += repl.Value
	}
}

// ChunksFor returns the chunk indices configured for the key (nil when the
// key is not cached).
func (c *Config) ChunksFor(key string) []int {
	o, ok := c.Options[key]
	if !ok {
		return nil
	}
	return append([]int(nil), o.Chunks...)
}

// String renders the configuration sorted by key for stable test output.
func (c *Config) String() string {
	keys := make([]string, 0, len(c.Options))
	for k := range c.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "config{w=%d v=%.1f", c.Weight, c.Value)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s:%d", k, c.Options[k].Weight)
	}
	b.WriteString("}")
	return b.String()
}

// PopulateParams tunes the POPULATE dynamic program.
type PopulateParams struct {
	// EarlyStop, when positive, stops the option iteration that many
	// iterations after MaxV[CacheSize] first becomes non-empty — the §VI
	// optimisation that bounds runtime by cache size rather than dataset
	// size. Zero disables early stopping.
	EarlyStop int
	// Passes is how many times the ordered option list is iterated. The
	// first pass builds configurations; later passes only refine them via
	// relaxation, which gives high-value keys (processed first, when the
	// cache was still empty) the chance to grow at the expense of marginal
	// keys. Zero means the default of 2.
	Passes int
}

// Populate computes a cache configuration from the option set, following
// the paper's Figure 4 pseudocode. CacheSize is in chunk slots. The
// returned configuration never exceeds CacheSize.
//
// MaxV[w] holds the best configuration discovered so far with total weight
// exactly w. Each option, visited in decreasing key-value order, first
// tries to improve existing configurations without changing their weight
// (RELAX, Figure 5) and then tries to extend each configuration into a
// heavier weight class (ADDTOCONFIG).
func Populate(set *OptionSet, cacheSize int, params PopulateParams) *Config {
	if cacheSize <= 0 {
		return NewConfig()
	}
	maxV := map[int]*Config{0: NewConfig()}
	passes := params.Passes
	if passes <= 0 {
		passes = 2
	}

	ordered := set.Ordered()
	sinceFull := -1 // iterations since MaxV[cacheSize] first appeared
loop:
	for pass := 0; pass < passes; pass++ {
		for _, opt := range ordered {
			if opt.Weight > cacheSize {
				continue
			}
			// Relaxation pass: improve configurations in place, same weight.
			for _, w := range sortedWeights(maxV) {
				relax(maxV[w], opt, set)
			}
			// Addition pass: extend configurations into heavier classes.
			for _, w := range sortedWeights(maxV) {
				cfg := maxV[w]
				if _, dup := cfg.Options[opt.Key]; dup {
					continue
				}
				nw := cfg.Weight + opt.Weight
				if nw > cacheSize {
					continue
				}
				nv := cfg.Value + opt.Value
				cur, ok := maxV[nw]
				if !ok || cur.Value < nv {
					ext := cfg.Clone()
					ext.Add(opt)
					maxV[nw] = ext
				}
			}
			if params.EarlyStop > 0 {
				if sinceFull >= 0 {
					sinceFull++
					if sinceFull >= params.EarlyStop {
						break loop
					}
				} else if _, ok := maxV[cacheSize]; ok {
					sinceFull = 0
				}
			}
		}
	}

	// The paper returns MaxV[CacheSize]; if that class was never reached
	// (small option sets), fall back to the best configuration that fits.
	best := NewConfig()
	for _, w := range sortedWeights(maxV) {
		if cfg := maxV[w]; w <= cacheSize && cfg.Value > best.Value {
			best = cfg
		}
	}
	return best
}

// relax implements Figure 5: try to shrink (or totally evict) one incumbent
// option so opt fits, keeping the configuration's total weight unchanged
// and improving its value. When opt's key is already configured with a
// lighter option, the same machinery upgrades it — the incumbent for
// another key is partially evicted to free exactly the additional weight
// (the paper's "partial eviction" case).
func relax(cfg *Config, opt Option, set *OptionSet) {
	type swap struct {
		oldKey string
		repl   Option
		value  float64
	}
	var best *swap

	if incumbent, dup := cfg.Options[opt.Key]; dup {
		// Same-key upgrade: grow opt.Key from incumbent.Weight to
		// opt.Weight by shrinking one other key.
		need := opt.Weight - incumbent.Weight
		if need <= 0 {
			return
		}
		gain := opt.Value - incumbent.Value
		for oldKey, oldOpt := range cfg.Options {
			if oldKey == opt.Key {
				continue
			}
			w := oldOpt.Weight - need
			if w < 0 {
				continue
			}
			repl, ok := set.Search(oldKey, w)
			if !ok {
				continue
			}
			v := cfg.Value + gain - oldOpt.Value + repl.Value
			if v > cfg.Value && (best == nil || v > best.value ||
				(v == best.value && oldKey < best.oldKey)) {
				best = &swap{oldKey: oldKey, repl: repl, value: v}
			}
		}
		if best == nil {
			return
		}
		cfg.Replace(best.oldKey, best.repl)
		cfg.Replace(opt.Key, opt)
		return
	}

	for oldKey, oldOpt := range cfg.Options {
		w := oldOpt.Weight - opt.Weight
		if w < 0 {
			continue
		}
		repl, ok := set.Search(oldKey, w)
		if !ok {
			continue
		}
		v := cfg.Value - oldOpt.Value + repl.Value + opt.Value
		if v > cfg.Value && (best == nil || v > best.value ||
			(v == best.value && oldKey < best.oldKey)) {
			best = &swap{oldKey: oldKey, repl: repl, value: v}
		}
	}
	if best == nil {
		return
	}
	cfg.Replace(best.oldKey, best.repl)
	cfg.Add(opt)
}

func sortedWeights(maxV map[int]*Config) []int {
	out := make([]int, 0, len(maxV))
	for w := range maxV {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
