package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/workload"
)

func TestApproxMonitorDoorkeeper(t *testing.T) {
	m := NewApproxMonitor(0.8, 100)
	// One-hit wonders must not become candidates.
	for i := 0; i < 50; i++ {
		m.Record(fmt.Sprintf("one-hit-%d", i))
	}
	if m.Candidates() != 0 {
		t.Fatalf("one-hit wonders admitted: %d candidates", m.Candidates())
	}
	// A repeat customer does.
	m.Record("repeat")
	m.Record("repeat")
	if m.Candidates() != 1 {
		t.Fatalf("repeat key not admitted: %d candidates", m.Candidates())
	}
	if m.Requests() != 52 {
		t.Fatalf("requests = %d", m.Requests())
	}
}

func TestApproxMonitorBoundedCandidates(t *testing.T) {
	m := NewApproxMonitor(0.8, 16)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i%100)
		m.Record(key)
		m.Record(key)
	}
	if got := m.Candidates(); got > 16 {
		t.Fatalf("candidate table exceeded bound: %d", got)
	}
}

func TestApproxMonitorAdmissionDuelKeepsHotKeys(t *testing.T) {
	m := NewApproxMonitor(0.8, 4)
	// Fill the table with warm keys.
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			m.Record(fmt.Sprintf("warm-%d", i))
		}
	}
	// A very hot newcomer must displace a warm key.
	for j := 0; j < 50; j++ {
		m.Record("hot")
	}
	pop := m.EndPeriod()
	if _, ok := pop["hot"]; !ok {
		t.Fatalf("hot key not admitted; snapshot: %v", pop)
	}
}

func TestApproxMonitorEndPeriodDecays(t *testing.T) {
	m := NewApproxMonitor(0.8, 100)
	for i := 0; i < 20; i++ {
		m.Record("k")
	}
	first := m.EndPeriod()["k"]
	if first <= 0 {
		t.Fatal("no popularity after hot period")
	}
	// Idle periods decay and eventually forget the key. The sketch halves
	// rather than clears, so decay is ~x0.5 per period — slower than the
	// exact monitor's x(1-alpha).
	var last float64 = first
	for i := 0; i < 25; i++ {
		snap := m.EndPeriod()
		v, ok := snap["k"]
		if !ok {
			return // forgotten, as intended
		}
		if v >= last {
			t.Fatalf("popularity did not decay: %v -> %v", last, v)
		}
		last = v
	}
	t.Fatal("key never forgotten after 25 idle periods")
}

func TestApproxMonitorTracksExactOnSkewedWorkload(t *testing.T) {
	// On a Zipfian stream the approximate monitor's top keys should largely
	// agree with the exact monitor's.
	exact := NewMonitor(0.8)
	approx := NewApproxMonitor(0.8, 64)
	gen := workload.NewZipfian(300, 1.1, 3)
	for i := 0; i < 20000; i++ {
		key := workload.KeyName(gen.Next())
		exact.Record(key)
		approx.Record(key)
	}
	exactPop := exact.EndPeriod()
	approxPop := approx.EndPeriod()

	topOf := func(pop map[string]float64, n int) map[string]bool {
		keys := make([]string, 0, len(pop))
		for k := range pop {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return pop[keys[i]] > pop[keys[j]] })
		if n > len(keys) {
			n = len(keys)
		}
		out := make(map[string]bool, n)
		for _, k := range keys[:n] {
			out[k] = true
		}
		return out
	}
	exactTop := topOf(exactPop, 10)
	approxTop := topOf(approxPop, 10)
	overlap := 0
	for k := range exactTop {
		if approxTop[k] {
			overlap++
		}
	}
	if overlap < 8 {
		t.Fatalf("approximate top-10 overlaps exact in only %d keys", overlap)
	}
}

func TestNodeWithApproxMonitor(t *testing.T) {
	matrix := geo.DefaultMatrix()
	n := NewNode(NodeParams{
		Region:         geo.Frankfurt,
		Regions:        geo.DefaultRegions(),
		Placement:      geo.NewRoundRobin(geo.DefaultRegions(), false),
		K:              9,
		M:              3,
		CacheBytes:     18 * testChunkBytes,
		ChunkBytes:     testChunkBytes,
		ApproxMonitor:  true,
		MaxTrackedKeys: 32,
	})
	n.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(geo.Frankfurt, r)
	}, 2)
	if n.Monitor() != nil {
		t.Fatal("exact-monitor accessor should be nil under approx mode")
	}
	if n.Popularity() == nil {
		t.Fatal("popularity source missing")
	}
	for i := 0; i < 40; i++ {
		n.HandleRead("object-0")
	}
	n.HandleRead("object-1")
	cfg := n.ForceReconfigure()
	if len(cfg.ChunksFor("object-0")) == 0 {
		t.Fatalf("approx-monitored node did not configure the hot object: %v", cfg)
	}
}

// BenchmarkApproxMonitorRecord measures the sketch-path per-request cost.
func BenchmarkApproxMonitorRecord(b *testing.B) {
	m := NewApproxMonitor(0.8, 1024)
	gen := workload.NewZipfian(100000, 0.99, 1)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = workload.KeyName(gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(keys[i%len(keys)])
	}
}
