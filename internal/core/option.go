// Package core implements the paper's primary contribution: Agar's
// cache-configuration machinery.
//
// It contains the caching-option generator (§IV-A), the POPULATE/RELAX
// dynamic program that chooses cache contents (§IV-B, Figures 4 and 5), an
// exact multiple-choice-knapsack reference solver and the greedy heuristic
// the paper argues against (§II-D), the EWMA-based request monitor, the
// latency-probing region manager, and the cache manager that periodically
// recomputes and applies the configuration (§III).
package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// Option is one caching option (§IV-A): a hypothetical configuration entry
// that captures the implications of caching a specific chunk set for one
// object.
type Option struct {
	// Key identifies the object.
	Key string
	// Chunks is the set of chunk indices to cache.
	Chunks []int
	// Weight is the cache space the option occupies, in chunk slots
	// (len(Chunks)).
	Weight int
	// Value is the overall latency improvement caching the set brings,
	// computed as popularity x latency improvement, in popularity-weighted
	// milliseconds.
	Value float64
}

// String renders the option compactly for debugging.
func (o Option) String() string {
	return fmt.Sprintf("{%s w=%d v=%.1f chunks=%v}", o.Key, o.Weight, o.Value, o.Chunks)
}

// DefaultWeightGrid returns the full weight grid 1..k. The paper's worked
// example enumerates the sparser grid {1, 3, 5, 7, 9}, available through
// PaperWeightGrid.
func DefaultWeightGrid(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// PaperWeightGrid returns the odd weights {1, 3, ..., k} used by the paper's
// §IV-A example and by the evaluation's fixed-c baselines.
func PaperWeightGrid(k int) []int {
	var out []int
	for w := 1; w <= k; w += 2 {
		out = append(out, w)
	}
	if len(out) == 0 || out[len(out)-1] != k {
		out = append(out, k)
	}
	return out
}

// GenerateOptions builds the caching options for one object (§IV-A).
//
// The fetch plan orders the object's chunks nearest-first as seen from the
// client region. The m furthest chunks are discarded (clients do not fetch
// them in the failure-free case), and each option caches the furthest
// retained chunks first. The value of a weight-w option is
//
//	popularity x (L(nothing cached) - L(option cached))
//
// where L is the latency of the furthest region still contacted; a fully
// cached object's residual latency is the local cache access time.
func GenerateOptions(key string, popularity float64, plan geo.FetchPlan, k int, grid []int, cacheLat time.Duration) []Option {
	if popularity < 0 {
		popularity = 0
	}
	baseline := residualLatency(plan, k, nil, cacheLat)
	out := make([]Option, 0, len(grid))
	for _, w := range grid {
		if w <= 0 {
			continue
		}
		if w > k {
			w = k
		}
		chunks := plan.FurthestRetained(k, w)
		excl := make(map[int]bool, len(chunks))
		for _, c := range chunks {
			excl[c] = true
		}
		residual := residualLatency(plan, k, excl, cacheLat)
		improvement := baseline - residual
		if improvement < 0 {
			improvement = 0
		}
		out = append(out, Option{
			Key:    key,
			Chunks: chunks,
			Weight: len(chunks),
			// Value in popularity-weighted milliseconds; nanosecond counts
			// divide exactly for the latencies used here.
			Value: popularity * float64(improvement) / float64(time.Millisecond),
		})
		if w == k {
			break
		}
	}
	return out
}

// residualLatency is the latency the client still pays with the excluded
// chunks cached: the furthest remaining backend chunk, or the local cache
// access when everything needed is cached. Cache reads happen in parallel
// with backend reads, so the cache latency also floors the result.
func residualLatency(plan geo.FetchPlan, k int, cached map[int]bool, cacheLat time.Duration) time.Duration {
	rem := time.Duration(plan.MaxLatencyExcluding(k, cached))
	if len(cached) > 0 && rem < cacheLat {
		rem = cacheLat
	}
	return rem
}

// OptionSet holds every object's options plus the key ordering POPULATE
// consumes (keys in decreasing value order, §IV Figure 4).
type OptionSet struct {
	// PerKey maps object key to its options sorted by increasing weight.
	PerKey map[string][]Option
	// Keys is sorted by decreasing best option value.
	Keys []string
}

// NewOptionSet assembles and orders an option set from per-key options.
func NewOptionSet(perKey map[string][]Option) *OptionSet {
	s := &OptionSet{PerKey: make(map[string][]Option, len(perKey))}
	for key, opts := range perKey {
		cp := append([]Option(nil), opts...)
		sort.Slice(cp, func(i, j int) bool { return cp[i].Weight < cp[j].Weight })
		s.PerKey[key] = cp
		s.Keys = append(s.Keys, key)
	}
	sort.Slice(s.Keys, func(i, j int) bool {
		vi, vj := s.bestValue(s.Keys[i]), s.bestValue(s.Keys[j])
		if vi != vj {
			return vi > vj
		}
		return s.Keys[i] < s.Keys[j] // deterministic tie-break
	})
	return s
}

func (s *OptionSet) bestValue(key string) float64 {
	best := 0.0
	for _, o := range s.PerKey[key] {
		if o.Value > best {
			best = o.Value
		}
	}
	return best
}

// Search returns the option for the key with exactly the given weight.
// Weight 0 returns the empty option (total eviction), as RELAX requires.
func (s *OptionSet) Search(key string, weight int) (Option, bool) {
	if weight == 0 {
		return Option{Key: key}, true
	}
	for _, o := range s.PerKey[key] {
		if o.Weight == weight {
			return o, true
		}
	}
	return Option{}, false
}

// Ordered returns every option in POPULATE's iteration order: keys by
// decreasing value, options within a key by increasing weight.
func (s *OptionSet) Ordered() []Option {
	var out []Option
	for _, key := range s.Keys {
		out = append(out, s.PerKey[key]...)
	}
	return out
}
