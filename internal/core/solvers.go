package core

import "sort"

// ExactMCKP solves the cache-configuration problem exactly. Choosing at
// most one caching option per object under a total weight budget is the
// multiple-choice knapsack problem; this dynamic program is exponential in
// nothing and pseudo-polynomial in the cache size, which is small here
// (hundreds of chunk slots). It serves as the oracle that bounds Populate
// in tests and ablation benchmarks.
func ExactMCKP(set *OptionSet, cacheSize int) *Config {
	if cacheSize <= 0 {
		return NewConfig()
	}
	type cell struct {
		value  float64
		valid  bool
		optIdx int // option index within the key's list, -1 = skip key
		prevW  int
	}
	keys := set.Keys
	// dp[i][w]: best value using the first i keys at exactly weight w.
	dp := make([][]cell, len(keys)+1)
	for i := range dp {
		dp[i] = make([]cell, cacheSize+1)
	}
	dp[0][0] = cell{valid: true, optIdx: -1}

	for i, key := range keys {
		opts := set.PerKey[key]
		for w := 0; w <= cacheSize; w++ {
			if !dp[i][w].valid {
				continue
			}
			// Skip this key.
			if cur := &dp[i+1][w]; !cur.valid || cur.value < dp[i][w].value {
				*cur = cell{value: dp[i][w].value, valid: true, optIdx: -1, prevW: w}
			}
			// Take each option.
			for oi, o := range opts {
				nw := w + o.Weight
				if o.Weight <= 0 || nw > cacheSize {
					continue
				}
				nv := dp[i][w].value + o.Value
				if cur := &dp[i+1][nw]; !cur.valid || cur.value < nv {
					*cur = cell{value: nv, valid: true, optIdx: oi, prevW: w}
				}
			}
		}
	}

	// Best final weight.
	bestW, bestV := 0, -1.0
	for w := 0; w <= cacheSize; w++ {
		if dp[len(keys)][w].valid && dp[len(keys)][w].value > bestV {
			bestW, bestV = w, dp[len(keys)][w].value
		}
	}

	// Reconstruct.
	cfg := NewConfig()
	w := bestW
	for i := len(keys); i > 0; i-- {
		c := dp[i][w]
		if c.optIdx >= 0 {
			cfg.Add(set.PerKey[keys[i-1]][c.optIdx])
		}
		w = c.prevW
	}
	return cfg
}

// Greedy picks options by value density (value per chunk slot), highest
// first, one option per key, skipping anything that no longer fits. The
// paper notes greedy algorithms "can err by as much as 50% from the optimal
// value" on 0/1 knapsack (§II-D); this implementation exists to quantify
// that gap in the ablation benchmarks.
func Greedy(set *OptionSet, cacheSize int) *Config {
	type cand struct {
		opt     Option
		density float64
	}
	var cands []cand
	for _, key := range set.Keys {
		for _, o := range set.PerKey[key] {
			if o.Weight <= 0 {
				continue
			}
			cands = append(cands, cand{opt: o, density: o.Value / float64(o.Weight)})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		// Prefer heavier options at equal density (more total value).
		return cands[i].opt.Weight > cands[j].opt.Weight
	})
	cfg := NewConfig()
	for _, c := range cands {
		if _, taken := cfg.Options[c.opt.Key]; taken {
			continue
		}
		if cfg.Weight+c.opt.Weight > cacheSize {
			continue
		}
		cfg.Add(c.opt)
	}
	return cfg
}
