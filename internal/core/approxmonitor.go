package core

import (
	"sync"

	"github.com/agardist/agar/internal/stats"
)

// PopularitySource is what the cache manager needs from a request monitor:
// per-request recording and a per-period popularity snapshot. Monitor is
// the exact implementation; ApproxMonitor trades exactness for bounded
// memory.
type PopularitySource interface {
	// Record notes one client request for the object.
	Record(key string)
	// EndPeriod closes the running period and returns the popularity
	// snapshot to configure the cache from.
	EndPeriod() map[string]float64
}

var (
	_ PopularitySource = (*Monitor)(nil)
	_ PopularitySource = (*ApproxMonitor)(nil)
)

// ApproxMonitor is a TinyLFU-style request monitor (§VI / §VII): instead of
// exact per-key counters it keeps a count-min sketch of frequencies behind
// a Bloom-filter doorkeeper, plus a bounded candidate table of keys worth
// configuring. One-hit wonders stay in the doorkeeper and consume neither
// sketch precision nor candidate slots, and total memory is fixed
// regardless of how many distinct objects clients request — the scaling
// path the paper sketches for large deployments.
type ApproxMonitor struct {
	mu         sync.Mutex
	alpha      float64
	maxKeys    int
	sketch     *stats.CountMinSketch
	doorkeeper *stats.BloomFilter
	candidates map[string]struct{}
	pop        map[string]*stats.EWMA
	reqs       int64
}

// NewApproxMonitor returns an approximate monitor tracking at most maxKeys
// candidate objects with EWMA coefficient alpha.
func NewApproxMonitor(alpha float64, maxKeys int) *ApproxMonitor {
	if maxKeys <= 0 {
		maxKeys = 1024
	}
	return &ApproxMonitor{
		alpha:      alpha,
		maxKeys:    maxKeys,
		sketch:     stats.NewCountMinSketch(maxKeys*8, 4),
		doorkeeper: stats.NewBloomFilter(maxKeys * 8),
		candidates: make(map[string]struct{}, maxKeys),
		pop:        make(map[string]*stats.EWMA),
	}
}

// Record implements PopularitySource.
func (m *ApproxMonitor) Record(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs++
	// Doorkeeper: the first access only sets the Bloom bit. Only repeat
	// customers reach the sketch and the candidate table.
	if !m.doorkeeper.Contains(key) {
		m.doorkeeper.Add(key)
		return
	}
	m.sketch.Add(key, 1)
	if _, ok := m.candidates[key]; ok {
		return
	}
	if len(m.candidates) < m.maxKeys {
		m.candidates[key] = struct{}{}
		return
	}
	// Candidate table full: admit only if this key's estimate beats the
	// current weakest candidate (TinyLFU's admission duel).
	est := m.sketch.Estimate(key)
	weakestKey, weakest := "", uint32(0)
	first := true
	for k := range m.candidates {
		e := m.sketch.Estimate(k)
		if first || e < weakest {
			weakestKey, weakest, first = k, e, false
		}
	}
	if est > weakest {
		delete(m.candidates, weakestKey)
		m.candidates[key] = struct{}{}
	}
}

// Requests returns the total number of recorded requests.
func (m *ApproxMonitor) Requests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reqs
}

// Candidates returns the number of tracked candidate keys.
func (m *ApproxMonitor) Candidates() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.candidates)
}

// EndPeriod implements PopularitySource: candidate frequencies are
// estimated from the sketch, folded into per-key EWMAs, and the sketch and
// doorkeeper reset for the next period (the sketch is halved rather than
// cleared, TinyLFU's aging).
func (m *ApproxMonitor) EndPeriod() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()

	for key := range m.candidates {
		if m.pop[key] == nil {
			m.pop[key] = stats.NewEWMA(m.alpha)
		}
	}
	out := make(map[string]float64, len(m.pop))
	for key, e := range m.pop {
		freq := float64(m.sketch.Estimate(key))
		if _, tracked := m.candidates[key]; !tracked {
			freq = 0
		}
		v := e.Update(freq)
		if v < popularityFloor {
			delete(m.pop, key)
			delete(m.candidates, key)
			continue
		}
		out[key] = v
	}
	m.sketch.Halve()
	m.doorkeeper.Reset()
	return out
}
