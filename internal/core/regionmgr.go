package core

import (
	"sync"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// latencyAlpha smooths region latency estimates. Probes are noisy samples
// of WAN latency; a moderate coefficient tracks drift without thrashing.
const latencyAlpha = 0.5

// RegionManager maintains the storage system's topology view (§III-a): the
// regions, the chunk placement policy, and a live per-region estimate of
// how long reading one chunk takes from the local client's vantage point.
// It is safe for concurrent use.
type RegionManager struct {
	client    geo.RegionID
	regions   []geo.RegionID
	placement geo.Placement
	total     int // chunks per object (k+m)

	mu  sync.Mutex
	est map[geo.RegionID]time.Duration
}

// NewRegionManager returns a manager for a node in the client region.
func NewRegionManager(client geo.RegionID, regions []geo.RegionID, placement geo.Placement, total int) *RegionManager {
	if total <= 0 {
		panic("core: region manager needs positive chunk count")
	}
	cp := make([]geo.RegionID, len(regions))
	copy(cp, regions)
	return &RegionManager{
		client:    client,
		regions:   cp,
		placement: placement,
		total:     total,
		est:       make(map[geo.RegionID]time.Duration),
	}
}

// Client returns the region this manager serves.
func (rm *RegionManager) Client() geo.RegionID { return rm.client }

// Regions returns the topology's regions.
func (rm *RegionManager) Regions() []geo.RegionID {
	out := make([]geo.RegionID, len(rm.regions))
	copy(out, rm.regions)
	return out
}

// Observe folds one measured chunk-read latency from the region into the
// estimate (EWMA); the first observation seeds it directly.
func (rm *RegionManager) Observe(region geo.RegionID, d time.Duration) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	cur, ok := rm.est[region]
	if !ok {
		rm.est[region] = d
		return
	}
	rm.est[region] = time.Duration(latencyAlpha*float64(d) + (1-latencyAlpha)*float64(cur))
}

// WarmUp seeds the estimates by probing each region `samples` times with
// the supplied probe function, mirroring the paper's warm-up phase that
// "retrieves several data blocks from each region".
func (rm *RegionManager) WarmUp(probe func(geo.RegionID) time.Duration, samples int) {
	for _, r := range rm.regions {
		for i := 0; i < samples; i++ {
			rm.Observe(r, probe(r))
		}
	}
}

// Estimate returns the current latency estimate for a region (0 if never
// observed).
func (rm *RegionManager) Estimate(region geo.RegionID) time.Duration {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.est[region]
}

// Estimates returns a copy of all current estimates.
func (rm *RegionManager) Estimates() map[geo.RegionID]time.Duration {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make(map[geo.RegionID]time.Duration, len(rm.est))
	for r, d := range rm.est {
		out[r] = d
	}
	return out
}

// Plan computes the nearest-first fetch plan for the object's chunks using
// the current latency estimates.
func (rm *RegionManager) Plan(key string) geo.FetchPlan {
	rm.mu.Lock()
	m := geo.NewLatencyMatrix(rm.matrixSizeLocked())
	for r, d := range rm.est {
		m.Set(rm.client, r, d)
	}
	rm.mu.Unlock()
	return geo.PlanFetch(m, rm.placement, key, rm.total, rm.client)
}

func (rm *RegionManager) matrixSizeLocked() int {
	maxID := int(rm.client)
	for _, r := range rm.regions {
		if int(r) > maxID {
			maxID = int(r)
		}
	}
	return maxID + 1
}
