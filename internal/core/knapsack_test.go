package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// randomOptionSet builds a synthetic option set with cumulative per-key
// values, the same structural shape GenerateOptions emits.
func randomOptionSet(r *rand.Rand, nKeys, k int) *OptionSet {
	perKey := make(map[string][]Option, nKeys)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("key-%03d", i)
		pop := r.Float64() * 100
		var opts []Option
		value := 0.0
		for w := 1; w <= k; w++ {
			value += pop * (r.Float64() * 50) // non-decreasing in w
			opts = append(opts, Option{Key: key, Weight: w, Value: value})
		}
		perKey[key] = opts
	}
	return NewOptionSet(perKey)
}

func configIsValid(t *testing.T, cfg *Config, set *OptionSet, cacheSize int) {
	t.Helper()
	w, v := 0, 0.0
	for key, o := range cfg.Options {
		if o.Key != key {
			t.Fatalf("config maps %q to option for %q", key, o.Key)
		}
		found, ok := set.Search(key, o.Weight)
		if !ok || found.Value != o.Value {
			t.Fatalf("config holds option not in set: %v", o)
		}
		w += o.Weight
		v += o.Value
	}
	if w != cfg.Weight {
		t.Fatalf("config weight %d, recomputed %d", cfg.Weight, w)
	}
	if diff := cfg.Value - v; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("config value %v, recomputed %v", cfg.Value, v)
	}
	if cfg.Weight > cacheSize {
		t.Fatalf("config weight %d exceeds cache size %d", cfg.Weight, cacheSize)
	}
}

func TestPopulateEmptyAndTrivial(t *testing.T) {
	set := NewOptionSet(nil)
	cfg := Populate(set, 10, PopulateParams{})
	if cfg.Weight != 0 || len(cfg.Options) != 0 {
		t.Fatal("empty set must yield empty config")
	}
	if cfg := Populate(randomOptionSet(rand.New(rand.NewSource(1)), 5, 3), 0, PopulateParams{}); cfg.Weight != 0 {
		t.Fatal("zero cache must yield empty config")
	}
}

func TestPopulateSingleKeyPicksBestFit(t *testing.T) {
	set := NewOptionSet(map[string][]Option{
		"k": {
			{Key: "k", Weight: 1, Value: 10},
			{Key: "k", Weight: 3, Value: 40},
			{Key: "k", Weight: 5, Value: 45},
		},
	})
	// Cache of 4: best single option that fits is weight 3 (value 40).
	cfg := Populate(set, 4, PopulateParams{})
	if cfg.Value != 40 || cfg.Weight != 3 {
		t.Fatalf("config = %v", cfg)
	}
	// Cache of 10: weight 5 (value 45) wins.
	cfg = Populate(set, 10, PopulateParams{})
	if cfg.Value != 45 {
		t.Fatalf("config = %v", cfg)
	}
}

func TestPopulateOneOptionPerKey(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	set := randomOptionSet(r, 20, 5)
	cfg := Populate(set, 25, PopulateParams{})
	configIsValid(t, cfg, set, 25)
}

func TestPopulateBeatsGreedyOnBalance(t *testing.T) {
	// Both populate and greedy are heuristics; populate should win or tie
	// on the overwhelming majority of instances and on aggregate value
	// (the paper's §II-D argument for a tailored algorithm).
	wins, losses := 0, 0
	var dpTotal, grTotal float64
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		set := randomOptionSet(r, 15, 9)
		size := 10 + r.Intn(40)
		dp := Populate(set, size, PopulateParams{})
		gr := Greedy(set, size)
		dpTotal += dp.Value
		grTotal += gr.Value
		switch {
		case dp.Value >= gr.Value-1e-9:
			wins++
		default:
			losses++
		}
	}
	if losses > wins/4 {
		t.Fatalf("populate lost to greedy too often: %d wins, %d losses", wins, losses)
	}
	if dpTotal < grTotal {
		t.Fatalf("populate aggregate %v below greedy aggregate %v", dpTotal, grTotal)
	}
}

func TestSolverBoundsQuick(t *testing.T) {
	// populate and greedy both emit valid configs whose value never exceeds
	// the exact optimum; no solver overflows the cache.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		set := randomOptionSet(r, 4+r.Intn(12), 1+r.Intn(9))
		size := 1 + r.Intn(30)
		gr := Greedy(set, size)
		dp := Populate(set, size, PopulateParams{})
		ex := ExactMCKP(set, size)
		if gr.Weight > size || dp.Weight > size || ex.Weight > size {
			return false
		}
		return gr.Value <= ex.Value+1e-9 && dp.Value <= ex.Value+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPopulateNearOptimalOnRealisticInstances(t *testing.T) {
	// On option sets generated from the actual latency model and Zipfian
	// popularity, the heuristic should land within a few percent of the
	// exact optimum.
	m := geo.DefaultMatrix()
	p := geo.NewRoundRobin(geo.DefaultRegions(), true)
	r := rand.New(rand.NewSource(7))
	perKey := make(map[string][]Option)
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("object-%03d", i)
		pop := 100 / float64(i+1) * (0.5 + r.Float64()) // zipf-ish with noise
		plan := geo.PlanFetch(m, p, key, 12, geo.Frankfurt)
		perKey[key] = GenerateOptions(key, pop, plan, 9, DefaultWeightGrid(9), 20*time.Millisecond)
	}
	set := NewOptionSet(perKey)
	for _, size := range []int{18, 45, 90, 180} {
		dp := Populate(set, size, PopulateParams{})
		ex := ExactMCKP(set, size)
		if ex.Value == 0 {
			t.Fatalf("size %d: exact found nothing", size)
		}
		ratio := dp.Value / ex.Value
		if ratio < 0.95 {
			t.Errorf("size %d: populate/exact = %.3f (dp=%v ex=%v)", size, ratio, dp.Value, ex.Value)
		}
	}
}

func TestExactMCKPKnownInstance(t *testing.T) {
	// Two keys, cache 4: best is a's w3 (40) + b's w1 (25) = 65, not a's
	// w4 (42) alone nor b's w4 (60) alone.
	set := NewOptionSet(map[string][]Option{
		"a": {
			{Key: "a", Weight: 3, Value: 40},
			{Key: "a", Weight: 4, Value: 42},
		},
		"b": {
			{Key: "b", Weight: 1, Value: 25},
			{Key: "b", Weight: 4, Value: 60},
		},
	})
	cfg := ExactMCKP(set, 4)
	if cfg.Value != 65 || cfg.Weight != 4 {
		t.Fatalf("exact config = %v", cfg)
	}
	if cfg.Options["a"].Weight != 3 || cfg.Options["b"].Weight != 1 {
		t.Fatalf("exact picked wrong options: %v", cfg)
	}
}

func TestGreedyCanErr(t *testing.T) {
	// Classic knapsack trap: density-greedy takes the small dense item and
	// wastes capacity. greedy < exact here proves the baseline is honest.
	set := NewOptionSet(map[string][]Option{
		"small": {{Key: "small", Weight: 1, Value: 10}}, // density 10
		"big":   {{Key: "big", Weight: 2, Value: 18}},   // density 9
	})
	// Cache 2: greedy takes small (10) and cannot fit big; exact takes big (18).
	gr := Greedy(set, 2)
	ex := ExactMCKP(set, 2)
	if gr.Value != 10 || ex.Value != 18 {
		t.Fatalf("greedy=%v exact=%v", gr.Value, ex.Value)
	}
}

func TestPopulateHandlesGreedyTrap(t *testing.T) {
	set := NewOptionSet(map[string][]Option{
		"small": {{Key: "small", Weight: 1, Value: 10}},
		"big":   {{Key: "big", Weight: 2, Value: 18}},
	})
	cfg := Populate(set, 2, PopulateParams{})
	if cfg.Value != 18 {
		t.Fatalf("populate fell into the greedy trap: %v", cfg)
	}
}

func TestPopulateRelaxShrinksIncumbent(t *testing.T) {
	// A scenario where RELAX matters: hot key occupies the whole cache;
	// a new key's option only fits if the hot key shrinks.
	set := NewOptionSet(map[string][]Option{
		"hot": {
			{Key: "hot", Weight: 2, Value: 80},
			{Key: "hot", Weight: 4, Value: 100},
		},
		"warm": {
			{Key: "warm", Weight: 2, Value: 60},
		},
	})
	cfg := Populate(set, 4, PopulateParams{})
	// Optimal: hot w2 (80) + warm w2 (60) = 140 > hot w4 (100).
	if cfg.Value != 140 {
		t.Fatalf("populate missed the relax move: %v", cfg)
	}
}

func TestPopulateEarlyStopStillValid(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	set := randomOptionSet(r, 40, 9)
	full := Populate(set, 30, PopulateParams{})
	early := Populate(set, 30, PopulateParams{EarlyStop: 50})
	configIsValid(t, early, set, 30)
	if early.Value > full.Value+1e-9 {
		t.Fatal("early stop produced higher value than full run (impossible)")
	}
	// With a generous iteration budget the early-stopped result should be
	// close to the full run.
	if full.Value > 0 && early.Value/full.Value < 0.8 {
		t.Errorf("early stop lost too much: %v vs %v", early.Value, full.Value)
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	cfg := NewConfig()
	cfg.Add(Option{Key: "a", Weight: 2, Value: 5})
	cp := cfg.Clone()
	cp.Add(Option{Key: "b", Weight: 1, Value: 1})
	if _, ok := cfg.Options["b"]; ok {
		t.Fatal("clone shares map")
	}
	if cfg.Weight != 2 || cp.Weight != 3 {
		t.Fatal("weights wrong after clone")
	}
}

func TestConfigAddDuplicatePanics(t *testing.T) {
	cfg := NewConfig()
	cfg.Add(Option{Key: "a", Weight: 1, Value: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	cfg.Add(Option{Key: "a", Weight: 2, Value: 2})
}

func TestConfigReplace(t *testing.T) {
	cfg := NewConfig()
	cfg.Add(Option{Key: "a", Weight: 3, Value: 30})
	cfg.Replace("a", Option{Key: "a", Weight: 1, Value: 12})
	if cfg.Weight != 1 || cfg.Value != 12 {
		t.Fatalf("after replace: %v", cfg)
	}
	// Replace with the empty option deletes the key.
	cfg.Replace("a", Option{Key: "a"})
	if len(cfg.Options) != 0 || cfg.Weight != 0 {
		t.Fatalf("after evict: %v", cfg)
	}
}

func TestConfigChunksFor(t *testing.T) {
	cfg := NewConfig()
	cfg.Add(Option{Key: "a", Weight: 2, Value: 1, Chunks: []int{4, 10}})
	got := cfg.ChunksFor("a")
	if len(got) != 2 || got[0] != 4 {
		t.Fatalf("ChunksFor = %v", got)
	}
	got[0] = 99
	if cfg.Options["a"].Chunks[0] == 99 {
		t.Fatal("ChunksFor returned shared storage")
	}
	if cfg.ChunksFor("absent") != nil {
		t.Fatal("absent key must return nil")
	}
}

func BenchmarkPopulate300Keys(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	set := randomOptionSet(r, 300, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Populate(set, 90, PopulateParams{})
	}
}

func BenchmarkPopulateEarlyStop300Keys(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	set := randomOptionSet(r, 300, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Populate(set, 90, PopulateParams{EarlyStop: 64})
	}
}

func BenchmarkExactMCKP300Keys(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	set := randomOptionSet(r, 300, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMCKP(set, 90)
	}
}
