package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/agardist/agar/internal/cache"
)

// Solver selects the algorithm the cache manager uses to choose cache
// contents.
type Solver int

const (
	// SolverPopulate is the paper's POPULATE/RELAX dynamic program
	// (default).
	SolverPopulate Solver = iota + 1
	// SolverExact is the exact multiple-choice-knapsack reference.
	SolverExact
	// SolverGreedy is the density-greedy heuristic (ablation baseline).
	SolverGreedy
)

// String returns the solver name.
func (s Solver) String() string {
	switch s {
	case SolverPopulate:
		return "populate"
	case SolverExact:
		return "exact"
	case SolverGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("solver(%d)", int(s))
	}
}

// ManagerParams configures a CacheManager.
type ManagerParams struct {
	// K is the number of data chunks per object.
	K int
	// CacheSlots is the cache capacity expressed in chunk slots.
	CacheSlots int
	// WeightGrid lists the option weights generated per object; nil means
	// DefaultWeightGrid(K).
	WeightGrid []int
	// CacheLatency is the local cache access time used when valuing fully
	// cached objects.
	CacheLatency time.Duration
	// Solver picks the configuration algorithm; zero means SolverPopulate.
	Solver Solver
	// EarlyStop forwards to PopulateParams.EarlyStop.
	EarlyStop int
}

// CacheManager periodically recomputes the ideal cache configuration from
// popularity statistics and latency estimates, and applies it to the local
// cache (§III-c). It is safe for concurrent use.
type CacheManager struct {
	params  ManagerParams
	monitor PopularitySource
	regions *RegionManager
	store   *cache.Cache

	mu     sync.Mutex
	active *Config
	runs   int
	peers  []PeerInfo
}

// NewCacheManager wires a manager to its monitor, region manager and cache.
func NewCacheManager(params ManagerParams, monitor PopularitySource, regions *RegionManager, store *cache.Cache) *CacheManager {
	if params.K <= 0 {
		panic("core: manager needs K > 0")
	}
	if params.CacheSlots < 0 {
		panic("core: negative cache slots")
	}
	if params.WeightGrid == nil {
		params.WeightGrid = DefaultWeightGrid(params.K)
	}
	if params.Solver == 0 {
		params.Solver = SolverPopulate
	}
	return &CacheManager{
		params:  params,
		monitor: monitor,
		regions: regions,
		store:   store,
		active:  NewConfig(),
	}
}

// Active returns the configuration currently in force.
func (cm *CacheManager) Active() *Config {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.active
}

// Runs returns how many reconfigurations have completed.
func (cm *CacheManager) Runs() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.runs
}

// Reconfigure closes the monitor's period, recomputes the ideal
// configuration, applies it to the cache, and returns it.
func (cm *CacheManager) Reconfigure() *Config {
	popularity := cm.monitor.EndPeriod()
	cfg := cm.Compute(popularity)
	cm.apply(cfg)

	cm.mu.Lock()
	cm.active = cfg
	cm.runs++
	cm.mu.Unlock()
	return cfg
}

// Compute derives the ideal configuration for a popularity snapshot without
// touching the cache — the planning core, exposed for tests and ablations.
func (cm *CacheManager) Compute(popularity map[string]float64) *Config {
	perKey := make(map[string][]Option, len(popularity))
	for key, pop := range popularity {
		if pop <= 0 {
			continue
		}
		plan := cm.regions.Plan(key)
		// Cooperative caching (SVI): chunks resident in peer caches are
		// already cheap, so options are valued against the adjusted plan
		// and the knapsack spends local slots elsewhere.
		plan = adjustPlanForPeers(plan, cm.peerResidency(key))
		opts := GenerateOptions(key, pop, plan, cm.params.K, cm.params.WeightGrid, cm.params.CacheLatency)
		if len(opts) > 0 {
			perKey[key] = opts
		}
	}
	set := NewOptionSet(perKey)
	switch cm.params.Solver {
	case SolverExact:
		return ExactMCKP(set, cm.params.CacheSlots)
	case SolverGreedy:
		return Greedy(set, cm.params.CacheSlots)
	default:
		return Populate(set, cm.params.CacheSlots, PopulateParams{EarlyStop: cm.params.EarlyStop})
	}
}

// apply points the cache's admission filter at the new configuration.
// Configured chunks are not prefetched — clients populate them on their
// next read, exactly as Agar's hint flow works. Chunks that left the
// configuration are not deleted eagerly: as in the memcached-backed
// prototype, they simply stop being read and the cache's LRU policy evicts
// them when space is needed, so an object that briefly drops out of the
// configuration and returns keeps its chunks warm.
func (cm *CacheManager) apply(cfg *Config) {
	if cm.store == nil {
		return
	}
	allowed := make(map[cache.EntryID]bool)
	for key, opt := range cfg.Options {
		for _, idx := range opt.Chunks {
			allowed[cache.EntryID{Key: key, Index: idx}] = true
		}
	}
	cm.store.SetAdmission(func(id cache.EntryID) bool { return allowed[id] })
}

// Hint is the answer the request monitor hands a client before a read
// (§III-b): which of the object's chunks the local cache is configured to
// hold. The client reads those from the cache (inserting them on a miss)
// and fetches the rest from the backend.
type Hint struct {
	// Key is the object the hint is for.
	Key string
	// CacheChunks lists the chunk indices configured for local caching;
	// empty means the object is not cached this period.
	CacheChunks []int
	// PeerChunks maps chunk indices resident in cooperative peer caches to
	// the peer to read them from (SVI extension); chunks also in
	// CacheChunks are omitted.
	PeerChunks map[int]PeerInfo
}

// HintFor returns the current hint for a key: the union of the chunks the
// active configuration assigns to the key and the chunks already resident
// in the cache (the "cache info" feed of Figure 3). Including residents
// means an object that briefly drops out of the configuration keeps serving
// partial hits until its chunks actually age out of the cache.
func (cm *CacheManager) HintFor(key string) Hint {
	cm.mu.Lock()
	configured := cm.active.ChunksFor(key)
	cm.mu.Unlock()

	if cm.store == nil {
		return cm.withPeerChunks(Hint{Key: key, CacheChunks: configured})
	}
	resident := cm.store.IndicesOf(key)
	if len(resident) == 0 {
		return cm.withPeerChunks(Hint{Key: key, CacheChunks: configured})
	}
	seen := make(map[int]bool, len(configured)+len(resident))
	union := make([]int, 0, len(configured)+len(resident))
	for _, idx := range configured {
		if !seen[idx] {
			seen[idx] = true
			union = append(union, idx)
		}
	}
	for _, idx := range resident {
		if !seen[idx] {
			seen[idx] = true
			union = append(union, idx)
		}
	}
	return cm.withPeerChunks(Hint{Key: key, CacheChunks: union})
}

// withPeerChunks annotates a hint with chunks readable from peer caches.
func (cm *CacheManager) withPeerChunks(h Hint) Hint {
	resident := cm.peerResidency(h.Key)
	if len(resident) == 0 {
		return h
	}
	local := make(map[int]bool, len(h.CacheChunks))
	for _, idx := range h.CacheChunks {
		local[idx] = true
	}
	for idx, p := range resident {
		if local[idx] {
			continue
		}
		if h.PeerChunks == nil {
			h.PeerChunks = make(map[int]PeerInfo)
		}
		h.PeerChunks[idx] = p
	}
	return h
}
