package core

import (
	"sort"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

// ChunkResidency is the narrow view of a peer cache the cooperative
// accounting needs: which chunks of an object the peer holds. Both local
// caches (*cache.Cache, the simulator's peers) and remote digest mirrors
// (coop.Mirror, fed by the live digest protocol) satisfy it, so the cache
// manager values peer-covered chunks the same way regardless of whether
// the peer is in-process or across a WAN link.
type ChunkResidency interface {
	// IndicesOf returns the peer's resident chunk indices for a key.
	IndicesOf(key string) []int
	// Contains reports single-chunk residency without counting an access.
	Contains(id cache.EntryID) bool
}

// PeerInfo describes a nearby Agar cache this node cooperates with (§VI):
// clients of this region can read chunks out of the peer's cache at
// Latency, typically far below the chunks' home-region cost. The first-step
// protocol the paper sketches — peers periodically broadcast their contents
// so each node can revalue its caching options — corresponds to the cache
// manager consulting the peer's residency when it generates options.
type PeerInfo struct {
	// Region is the peer's region.
	Region geo.RegionID
	// Store is the peer cache's residency view: the cache itself for local
	// simulated peers, a digest mirror for live remote ones.
	Store ChunkResidency
	// Latency is the chunk-read latency from local clients to the peer's
	// cache.
	Latency time.Duration
}

// AddPeer registers a cooperative peer cache with the node.
func (n *Node) AddPeer(region geo.RegionID, store ChunkResidency, latency time.Duration) {
	n.manager.addPeer(PeerInfo{Region: region, Store: store, Latency: latency})
}

// Peers returns the node's cooperative peers.
func (n *Node) Peers() []PeerInfo { return n.manager.Peers() }

func (cm *CacheManager) addPeer(p PeerInfo) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.peers = append(cm.peers, p)
}

// Peers returns a copy of the manager's peer list.
func (cm *CacheManager) Peers() []PeerInfo {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	out := make([]PeerInfo, len(cm.peers))
	copy(out, cm.peers)
	return out
}

// peerResidency returns, for one object, the chunks resident in peer caches
// and the cheapest peer latency for each.
func (cm *CacheManager) peerResidency(key string) map[int]PeerInfo {
	peers := cm.Peers()
	if len(peers) == 0 {
		return nil
	}
	out := make(map[int]PeerInfo)
	for _, p := range peers {
		for _, idx := range p.Store.IndicesOf(key) {
			cur, ok := out[idx]
			if !ok || p.Latency < cur.Latency {
				out[idx] = p
			}
		}
	}
	return out
}

// adjustPlanForPeers lowers the effective latency of chunks resident in
// peer caches and re-sorts the plan, so option values reflect that those
// chunks are already cheap without local caching.
func adjustPlanForPeers(plan geo.FetchPlan, resident map[int]PeerInfo) geo.FetchPlan {
	if len(resident) == 0 {
		return plan
	}
	n := len(plan.Chunks)
	type entry struct {
		chunk  int
		region geo.RegionID
		lat    int64
	}
	entries := make([]entry, n)
	for i := 0; i < n; i++ {
		e := entry{chunk: plan.Chunks[i], region: plan.Region[i], lat: plan.Latency[i]}
		if p, ok := resident[e.chunk]; ok && int64(p.Latency) < e.lat {
			e.lat = int64(p.Latency)
			e.region = p.Region
		}
		entries[i] = e
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].lat != entries[b].lat {
			return entries[a].lat < entries[b].lat
		}
		return entries[a].chunk < entries[b].chunk
	})
	out := geo.FetchPlan{
		Chunks:  make([]int, n),
		Region:  make([]geo.RegionID, n),
		Latency: make([]int64, n),
	}
	for i, e := range entries {
		out.Chunks[i] = e.chunk
		out.Region[i] = e.region
		out.Latency[i] = e.lat
	}
	return out
}
