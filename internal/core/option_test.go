package core

import (
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// paperPlan reproduces the §IV-A worked example: Frankfurt's view of an
// object placed round-robin (fixed) over the six regions with Table I
// latencies.
func paperPlan(t *testing.T, key string) geo.FetchPlan {
	t.Helper()
	m := geo.TableIMatrix()
	p := geo.NewRoundRobin(geo.DefaultRegions(), false)
	return geo.PlanFetch(m, p, key, 12, geo.Frankfurt)
}

func TestWeightGrids(t *testing.T) {
	full := DefaultWeightGrid(9)
	if len(full) != 9 || full[0] != 1 || full[8] != 9 {
		t.Fatalf("DefaultWeightGrid(9) = %v", full)
	}
	paper := PaperWeightGrid(9)
	want := []int{1, 3, 5, 7, 9}
	if len(paper) != len(want) {
		t.Fatalf("PaperWeightGrid(9) = %v", paper)
	}
	for i := range want {
		if paper[i] != want[i] {
			t.Fatalf("PaperWeightGrid(9) = %v, want %v", paper, want)
		}
	}
	// Even k must still end at k.
	even := PaperWeightGrid(4)
	if even[len(even)-1] != 4 {
		t.Fatalf("PaperWeightGrid(4) = %v", even)
	}
}

func TestGenerateOptionsPaperExample(t *testing.T) {
	// §IV-A: popularity 80 (first period, frequency 100, alpha 0.8).
	// Weight-1 option caches the retained Tokyo block; its improvement is
	// 2,000 ms (Tokyo 3,400 - Sao Paulo 1,400), value 80 x 2,000 = 160,000.
	plan := paperPlan(t, "key1")
	opts := GenerateOptions("key1", 80, plan, 9, PaperWeightGrid(9), 20*time.Millisecond)
	if len(opts) != 5 {
		t.Fatalf("got %d options, want 5 (weights 1,3,5,7,9)", len(opts))
	}

	w1 := opts[0]
	if w1.Weight != 1 {
		t.Fatalf("first option weight %d", w1.Weight)
	}
	if w1.Value != 80*2000 {
		t.Fatalf("weight-1 value = %v, want 160000", w1.Value)
	}

	// Cumulative values for the remaining grid points, from Table I:
	// w3 caches Tokyo+SaoPaulo x2 -> residual N.Virginia 600: 80x2800.
	// w5 adds N.Virginia x2 -> residual Dublin 200: 80x3200.
	// w7 adds Dublin x2 -> residual Frankfurt 80: 80x3320.
	// w9 adds Frankfurt x2 -> residual cache 20ms: 80x3380.
	wantValues := map[int]float64{
		3: 80 * 2800,
		5: 80 * 3200,
		7: 80 * 3320,
		9: 80 * 3380,
	}
	for _, o := range opts[1:] {
		want, ok := wantValues[o.Weight]
		if !ok {
			t.Fatalf("unexpected weight %d", o.Weight)
		}
		if o.Value != want {
			t.Fatalf("weight-%d value = %v, want %v", o.Weight, o.Value, want)
		}
		if len(o.Chunks) != o.Weight {
			t.Fatalf("weight-%d option has %d chunks", o.Weight, len(o.Chunks))
		}
	}
}

func TestGenerateOptionsMarginalExample(t *testing.T) {
	// The paper presents the second option's value marginally:
	// 80 x (1400 - 600) = 64,000 on top of option 1. Cumulatively, option 2
	// minus option 1 must equal exactly that.
	plan := paperPlan(t, "key1")
	opts := GenerateOptions("key1", 80, plan, 9, PaperWeightGrid(9), 20*time.Millisecond)
	if got := opts[1].Value - opts[0].Value; got != 64000 {
		t.Fatalf("marginal value of option 2 = %v, want 64000", got)
	}
}

func TestGenerateOptionsDiscardsFurthest(t *testing.T) {
	// No generated option may cache a chunk stored in Sydney (the m=3
	// furthest chunks from Frankfurt are 2x Sydney + 1x Tokyo).
	plan := paperPlan(t, "key1")
	p := geo.NewRoundRobin(geo.DefaultRegions(), false)
	locs := p.Locate("key1", 12)
	opts := GenerateOptions("key1", 80, plan, 9, DefaultWeightGrid(9), 20*time.Millisecond)
	for _, o := range opts {
		for _, c := range o.Chunks {
			if locs[c] == geo.Sydney {
				t.Fatalf("weight-%d option caches Sydney chunk %d", o.Weight, c)
			}
		}
	}
}

func TestGenerateOptionsMonotonic(t *testing.T) {
	// Values must be non-decreasing in weight (cumulative improvements).
	plan := paperPlan(t, "k")
	opts := GenerateOptions("k", 10, plan, 9, DefaultWeightGrid(9), 20*time.Millisecond)
	for i := 1; i < len(opts); i++ {
		if opts[i].Value < opts[i-1].Value {
			t.Fatalf("value decreased from weight %d to %d", opts[i-1].Weight, opts[i].Weight)
		}
		if opts[i].Weight != opts[i-1].Weight+1 {
			t.Fatalf("weights not consecutive: %d -> %d", opts[i-1].Weight, opts[i].Weight)
		}
	}
}

func TestGenerateOptionsZeroAndNegativePopularity(t *testing.T) {
	plan := paperPlan(t, "k")
	for _, pop := range []float64{0, -5} {
		opts := GenerateOptions("k", pop, plan, 9, PaperWeightGrid(9), 0)
		for _, o := range opts {
			if o.Value != 0 {
				t.Fatalf("popularity %v produced value %v", pop, o.Value)
			}
		}
	}
}

func TestOptionSetOrdering(t *testing.T) {
	set := NewOptionSet(map[string][]Option{
		"low":  {{Key: "low", Weight: 1, Value: 10}},
		"high": {{Key: "high", Weight: 2, Value: 100}, {Key: "high", Weight: 1, Value: 50}},
		"mid":  {{Key: "mid", Weight: 1, Value: 60}},
	})
	wantKeys := []string{"high", "mid", "low"}
	for i, k := range wantKeys {
		if set.Keys[i] != k {
			t.Fatalf("Keys = %v, want %v", set.Keys, wantKeys)
		}
	}
	// Per-key options sorted by weight.
	if set.PerKey["high"][0].Weight != 1 || set.PerKey["high"][1].Weight != 2 {
		t.Fatal("per-key options not weight-sorted")
	}
	// Ordered flattens keys-major.
	ordered := set.Ordered()
	if len(ordered) != 4 || ordered[0].Key != "high" || ordered[3].Key != "low" {
		t.Fatalf("Ordered = %v", ordered)
	}
}

func TestOptionSetSearch(t *testing.T) {
	set := NewOptionSet(map[string][]Option{
		"k": {{Key: "k", Weight: 3, Value: 30}},
	})
	if o, ok := set.Search("k", 3); !ok || o.Value != 30 {
		t.Fatal("Search missed existing option")
	}
	if _, ok := set.Search("k", 2); ok {
		t.Fatal("Search invented an option")
	}
	// Weight 0 always exists: the empty (evict-everything) option.
	if o, ok := set.Search("k", 0); !ok || o.Weight != 0 || o.Value != 0 {
		t.Fatal("weight-0 search must return the empty option")
	}
}
