package core

import (
	"testing"

	"github.com/agardist/agar/internal/geo"
)

func TestDefaultCacheShards(t *testing.T) {
	cases := []struct {
		slots int64
		want  int
	}{
		{0, 1}, {90, 1}, {256, 1}, {1023, 1}, {1024, 2}, {2047, 2},
		{2048, 4}, {4096, 8}, {8192, 16}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := defaultCacheShards(c.slots); got != c.want {
			t.Errorf("defaultCacheShards(%d) = %d, want %d", c.slots, got, c.want)
		}
	}
}

func TestNodeCacheShardWiring(t *testing.T) {
	mk := func(cacheBytes int64, override int) int {
		n := NewNode(NodeParams{
			Region:      geo.Frankfurt,
			Regions:     geo.DefaultRegions(),
			Placement:   geo.NewRoundRobin(geo.DefaultRegions(), false),
			K:           4,
			M:           2,
			CacheBytes:  cacheBytes,
			ChunkBytes:  1024,
			CacheShards: override,
		})
		return n.Cache().ShardCount()
	}
	if got := mk(90*1024, 0); got != 1 {
		t.Errorf("evaluation-scale cache sharded %d ways, want 1", got)
	}
	if got := mk(4096*1024, 0); got != 8 {
		t.Errorf("large cache sharded %d ways, want 8", got)
	}
	if got := mk(90*1024, 4); got != 4 {
		t.Errorf("override ignored: %d shards", got)
	}
}
