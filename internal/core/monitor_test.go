package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

func TestMonitorRecordAndFrequency(t *testing.T) {
	m := NewMonitor(0.8)
	for i := 0; i < 100; i++ {
		m.Record("hot")
	}
	m.Record("cold")
	if m.CurrentFrequency("hot") != 100 || m.CurrentFrequency("cold") != 1 {
		t.Fatal("frequencies wrong")
	}
	if m.Requests() != 101 {
		t.Fatalf("requests = %d", m.Requests())
	}
}

func TestMonitorEndPeriodPaperExample(t *testing.T) {
	// §IV: first period, frequency 100, alpha 0.8 -> popularity 80.
	m := NewMonitor(0.8)
	for i := 0; i < 100; i++ {
		m.Record("key1")
	}
	pop := m.EndPeriod()
	if pop["key1"] != 80 {
		t.Fatalf("popularity = %v, want 80", pop["key1"])
	}
	// Second period without accesses: 0.8*0 + 0.2*80 = 16 (up to float
	// rounding in the EWMA recurrence).
	pop = m.EndPeriod()
	if diff := pop["key1"] - 16; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decayed popularity = %v, want 16", pop["key1"])
	}
	// Frequencies reset each period.
	if m.CurrentFrequency("key1") != 0 {
		t.Fatal("frequency not reset")
	}
}

func TestMonitorForgetsDeadKeys(t *testing.T) {
	m := NewMonitor(0.8)
	m.Record("once")
	m.EndPeriod()
	// 0.8 decays by x0.2 per idle period; after ~5 periods it is under the
	// floor and must disappear.
	for i := 0; i < 6; i++ {
		m.EndPeriod()
	}
	if _, ok := m.Popularity()["once"]; ok {
		t.Fatal("dead key not forgotten")
	}
}

func TestMonitorTopKeys(t *testing.T) {
	m := NewMonitor(0.8)
	for i := 0; i < 30; i++ {
		m.Record("a")
	}
	for i := 0; i < 20; i++ {
		m.Record("b")
	}
	m.Record("c")
	m.EndPeriod()
	top := m.TopKeys(2)
	if len(top) != 2 || top[0] != "a" || top[1] != "b" {
		t.Fatalf("TopKeys = %v", top)
	}
	if got := m.TopKeys(99); len(got) != 3 {
		t.Fatalf("TopKeys(99) = %v", got)
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m := NewMonitor(0.8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(fmt.Sprintf("key-%d", i%10))
			}
		}(g)
	}
	wg.Wait()
	if m.Requests() != 8000 {
		t.Fatalf("requests = %d", m.Requests())
	}
	pop := m.EndPeriod()
	if pop["key-0"] != 0.8*800 {
		t.Fatalf("key-0 popularity = %v", pop["key-0"])
	}
}

func TestRegionManagerObserveAndEstimate(t *testing.T) {
	rm := NewRegionManager(geo.Frankfurt, geo.DefaultRegions(), geo.NewRoundRobin(geo.DefaultRegions(), false), 12)
	if rm.Client() != geo.Frankfurt {
		t.Fatal("client wrong")
	}
	rm.Observe(geo.Tokyo, 1000*time.Millisecond)
	if got := rm.Estimate(geo.Tokyo); got != 1000*time.Millisecond {
		t.Fatalf("first observation should seed: %v", got)
	}
	rm.Observe(geo.Tokyo, 500*time.Millisecond)
	// EWMA(0.5): 0.5*500 + 0.5*1000 = 750.
	if got := rm.Estimate(geo.Tokyo); got != 750*time.Millisecond {
		t.Fatalf("EWMA = %v, want 750ms", got)
	}
	if got := rm.Estimate(geo.Dublin); got != 0 {
		t.Fatalf("unobserved region estimate = %v", got)
	}
}

func TestRegionManagerWarmUp(t *testing.T) {
	matrix := geo.DefaultMatrix()
	rm := NewRegionManager(geo.Sydney, geo.DefaultRegions(), geo.NewRoundRobin(geo.DefaultRegions(), false), 12)
	rm.WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(geo.Sydney, r)
	}, 3)
	for _, r := range geo.DefaultRegions() {
		if got, want := rm.Estimate(r), matrix.Get(geo.Sydney, r); got != want {
			t.Fatalf("estimate %v = %v, want %v", r, got, want)
		}
	}
	ests := rm.Estimates()
	if len(ests) != 6 {
		t.Fatalf("Estimates has %d entries", len(ests))
	}
}

func TestRegionManagerPlan(t *testing.T) {
	matrix := geo.DefaultMatrix()
	rm := NewRegionManager(geo.Frankfurt, geo.DefaultRegions(), geo.NewRoundRobin(geo.DefaultRegions(), false), 12)
	rm.WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(geo.Frankfurt, r)
	}, 1)
	plan := rm.Plan("key")
	// Plan from estimates must match the plan from the true matrix.
	want := geo.PlanFetch(matrix, geo.NewRoundRobin(geo.DefaultRegions(), false), "key", 12, geo.Frankfurt)
	for i := range want.Chunks {
		if plan.Chunks[i] != want.Chunks[i] {
			t.Fatalf("plan order differs at %d: %v vs %v", i, plan.Chunks, want.Chunks)
		}
	}
}
