package core

import (
	"sort"
	"sync"

	"github.com/agardist/agar/internal/stats"
)

// DefaultAlpha is the EWMA weighting coefficient the paper uses (§IV).
const DefaultAlpha = 0.8

// popularityFloor is the EWMA value below which a key's statistics are
// dropped entirely; with alpha 0.8 an unaccessed key decays under the floor
// within a few periods.
const popularityFloor = 1e-3

// Monitor is Agar's request monitor (§III-b): it listens to client
// requests, counts per-object access frequency over the current period, and
// folds each period's frequencies into an exponentially weighted moving
// average of popularity. It is safe for concurrent use.
type Monitor struct {
	mu    sync.Mutex
	alpha float64
	freq  map[string]int64
	pop   map[string]*stats.EWMA
	reqs  int64
}

// NewMonitor returns a monitor with the given EWMA coefficient.
func NewMonitor(alpha float64) *Monitor {
	return &Monitor{
		alpha: alpha,
		freq:  make(map[string]int64),
		pop:   make(map[string]*stats.EWMA),
	}
}

// Record notes one client request for the object.
func (m *Monitor) Record(key string) {
	m.mu.Lock()
	m.freq[key]++
	m.reqs++
	m.mu.Unlock()
}

// Requests returns the total number of requests recorded since creation.
func (m *Monitor) Requests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reqs
}

// CurrentFrequency returns the access count for the key in the running
// period.
func (m *Monitor) CurrentFrequency(key string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.freq[key]
}

// EndPeriod closes the running period: every tracked key's frequency
// (including zero for keys seen in earlier periods) is folded into its
// EWMA, frequencies reset, and the new popularity snapshot is returned.
// Keys whose popularity decays to a negligible level are forgotten.
func (m *Monitor) EndPeriod() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Make sure keys seen this period have an EWMA slot.
	for key := range m.freq {
		if m.pop[key] == nil {
			m.pop[key] = stats.NewEWMA(m.alpha)
		}
	}
	out := make(map[string]float64, len(m.pop))
	for key, e := range m.pop {
		v := e.Update(float64(m.freq[key]))
		if v < popularityFloor {
			delete(m.pop, key)
			continue
		}
		out[key] = v
	}
	m.freq = make(map[string]int64)
	return out
}

// Popularity returns the current EWMA popularity snapshot without closing
// the period.
func (m *Monitor) Popularity() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.pop))
	for key, e := range m.pop {
		out[key] = e.Value()
	}
	return out
}

// TopKeys returns up to n keys by current popularity, most popular first,
// with deterministic tie-breaking.
func (m *Monitor) TopKeys(n int) []string {
	pop := m.Popularity()
	keys := make([]string, 0, len(pop))
	for k := range pop {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if pop[keys[i]] != pop[keys[j]] {
			return pop[keys[i]] > pop[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n < len(keys) {
		keys = keys[:n]
	}
	return keys
}
