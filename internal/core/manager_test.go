package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

const testChunkBytes = 1 << 10

func newTestNode(t testing.TB, region geo.RegionID, cacheSlots int) *Node {
	t.Helper()
	matrix := geo.DefaultMatrix()
	n := NewNode(NodeParams{
		Region:         region,
		Regions:        geo.DefaultRegions(),
		Placement:      geo.NewRoundRobin(geo.DefaultRegions(), false),
		K:              9,
		M:              3,
		CacheBytes:     int64(cacheSlots) * testChunkBytes,
		ChunkBytes:     testChunkBytes,
		ReconfigPeriod: 30 * time.Second,
		CacheLatency:   20 * time.Millisecond,
	})
	n.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(region, r)
	}, 2)
	return n
}

func TestManagerReconfigureCachesHottestObjects(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 18) // room for two full objects
	// Skewed access: object-0 hot, object-1 warm, object-2 barely touched.
	for i := 0; i < 100; i++ {
		n.HandleRead("object-0")
	}
	for i := 0; i < 50; i++ {
		n.HandleRead("object-1")
	}
	n.HandleRead("object-2")

	cfg := n.ForceReconfigure()
	if cfg.Weight == 0 || cfg.Weight > 18 {
		t.Fatalf("config weight %d", cfg.Weight)
	}
	if len(cfg.ChunksFor("object-0")) == 0 {
		t.Fatal("hottest object not cached")
	}
	// The hottest object must get at least as many chunks as the coldest
	// configured one.
	if h, c := len(cfg.ChunksFor("object-0")), len(cfg.ChunksFor("object-2")); c > h {
		t.Fatalf("hot object has %d chunks, cold has %d", h, c)
	}
}

func TestManagerHintMatchesConfig(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 9)
	for i := 0; i < 10; i++ {
		n.HandleRead("object-0")
	}
	n.ForceReconfigure()
	hint := n.Manager().HintFor("object-0")
	cfg := n.Manager().Active()
	want := cfg.ChunksFor("object-0")
	if len(hint.CacheChunks) != len(want) {
		t.Fatalf("hint %v vs config %v", hint.CacheChunks, want)
	}
	// Unknown keys get an empty hint.
	if got := n.Manager().HintFor("never-seen"); len(got.CacheChunks) != 0 {
		t.Fatalf("hint for unknown key: %v", got)
	}
}

func TestManagerAppliesAdmissionAndEviction(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 9)
	store := n.Cache()

	// Before any reconfiguration nothing is admitted.
	if err := store.Put(cache.EntryID{Key: "object-0", Index: 4}, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("pre-config insert should be rejected by admission")
	}

	for i := 0; i < 10; i++ {
		n.HandleRead("object-0")
	}
	n.ForceReconfigure()
	cfgChunks := n.Manager().Active().ChunksFor("object-0")
	if len(cfgChunks) == 0 {
		t.Fatal("expected object-0 configured")
	}

	// Configured chunks are admitted...
	if err := store.Put(cache.EntryID{Key: "object-0", Index: cfgChunks[0]}, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatal("configured chunk rejected")
	}
	// ...others are not.
	if err := store.Put(cache.EntryID{Key: "object-9", Index: 0}, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatal("unconfigured chunk admitted")
	}

	// A reconfiguration that drops object-0 stops admitting its chunks but
	// does not delete resident ones: like the memcached prototype, stale
	// chunks age out of the LRU tail under insertion pressure.
	for i := 0; i < 500; i++ {
		n.HandleRead("object-7") // new hot object
	}
	// Let object-0's popularity decay over several idle periods.
	for i := 0; i < 6; i++ {
		n.ForceReconfigure()
	}
	if chunks := n.Manager().Active().ChunksFor("object-0"); len(chunks) != 0 {
		t.Skipf("object-0 still configured (%v); decay too slow in this setup", chunks)
	}
	// Residents survive (lazy eviction) and still appear in hints...
	resident := store.IndicesOf("object-0")
	hint := n.Manager().HintFor("object-0")
	if len(hint.CacheChunks) < len(resident) {
		t.Fatalf("hint %v omits resident chunks %v", hint.CacheChunks, resident)
	}
	// ...but new inserts for the dropped object are refused by admission.
	if err := store.Put(cache.EntryID{Key: "object-0", Index: 0}, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	for _, idx := range store.IndicesOf("object-0") {
		if idx == 0 {
			t.Fatal("admission filter admitted a de-configured chunk")
		}
	}
}

func TestManagerRespectsCapacity(t *testing.T) {
	for _, slots := range []int{5, 9, 45, 90} {
		n := newTestNode(t, geo.Frankfurt, slots)
		for obj := 0; obj < 50; obj++ {
			for r := 0; r < 60-obj; r++ {
				n.HandleRead(fmt.Sprintf("object-%d", obj))
			}
		}
		cfg := n.ForceReconfigure()
		if cfg.Weight > slots {
			t.Fatalf("slots=%d: config weight %d", slots, cfg.Weight)
		}
		if slots >= 9 && cfg.Weight == 0 {
			t.Fatalf("slots=%d: empty config despite traffic", slots)
		}
	}
}

func TestManagerSolverVariants(t *testing.T) {
	pop := map[string]float64{}
	for i := 0; i < 30; i++ {
		pop[fmt.Sprintf("object-%d", i)] = float64(100 - 3*i)
	}
	values := map[Solver]float64{}
	for _, solver := range []Solver{SolverPopulate, SolverExact, SolverGreedy} {
		matrix := geo.DefaultMatrix()
		rm := NewRegionManager(geo.Frankfurt, geo.DefaultRegions(), geo.NewRoundRobin(geo.DefaultRegions(), false), 12)
		rm.WarmUp(func(r geo.RegionID) time.Duration { return matrix.Get(geo.Frankfurt, r) }, 1)
		cm := NewCacheManager(ManagerParams{
			K:            9,
			CacheSlots:   45,
			CacheLatency: 20 * time.Millisecond,
			Solver:       solver,
		}, NewMonitor(0.8), rm, nil)
		cfg := cm.Compute(pop)
		if cfg.Weight > 45 {
			t.Fatalf("%v overflowed capacity", solver)
		}
		values[solver] = cfg.Value
	}
	if values[SolverPopulate] > values[SolverExact]+1e-6 {
		t.Fatalf("populate (%v) beat exact (%v)?", values[SolverPopulate], values[SolverExact])
	}
	if values[SolverGreedy] > values[SolverExact]+1e-6 {
		t.Fatalf("greedy (%v) beat exact (%v)?", values[SolverGreedy], values[SolverExact])
	}
}

func TestSolverString(t *testing.T) {
	if SolverPopulate.String() != "populate" || SolverExact.String() != "exact" ||
		SolverGreedy.String() != "greedy" || Solver(9).String() == "" {
		t.Fatal("solver names wrong")
	}
}

func TestNodeMaybeReconfigure(t *testing.T) {
	n := newTestNode(t, geo.Sydney, 18)
	base := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	if !n.MaybeReconfigure(base) {
		t.Fatal("first call must reconfigure")
	}
	if n.MaybeReconfigure(base.Add(10 * time.Second)) {
		t.Fatal("reconfigured before the period elapsed")
	}
	if !n.MaybeReconfigure(base.Add(31 * time.Second)) {
		t.Fatal("did not reconfigure after the period")
	}
	if n.Manager().Runs() != 2 {
		t.Fatalf("runs = %d", n.Manager().Runs())
	}
}

func TestNodeStartStop(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 9)
	n.Start()
	n.Start() // idempotent
	n.Stop()
	n.Stop() // idempotent
}

func TestNodeStopWithoutStart(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 9)
	n.Stop() // must not hang or panic
}

func TestNodeHandleReadRecords(t *testing.T) {
	n := newTestNode(t, geo.Frankfurt, 9)
	n.HandleRead("k")
	n.HandleRead("k")
	if n.Monitor().CurrentFrequency("k") != 2 {
		t.Fatal("HandleRead did not record")
	}
}

// BenchmarkRequestMonitor measures the per-request monitor+hint cost the
// paper reports as ~0.5 ms (§VI). In-process it is far cheaper; the paper's
// figure includes a UDP round trip.
func BenchmarkRequestMonitor(b *testing.B) {
	n := newTestNode(b, geo.Frankfurt, 90)
	for i := 0; i < 300; i++ {
		n.HandleRead(fmt.Sprintf("object-%d", i))
	}
	n.ForceReconfigure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.HandleRead(fmt.Sprintf("object-%d", i%300))
	}
}

// BenchmarkCacheManager measures a full reconfiguration over 300 tracked
// objects, the operation the paper reports at ~5 ms (§VI).
func BenchmarkCacheManager(b *testing.B) {
	n := newTestNode(b, geo.Frankfurt, 90)
	zipfish := func(i int) int { return 1 + 3000/(i+1) }
	for i := 0; i < 300; i++ {
		for j := 0; j < zipfish(i); j++ {
			n.Monitor().Record(fmt.Sprintf("object-%d", i))
		}
	}
	pop := n.Monitor().EndPeriod()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Manager().Compute(pop)
	}
}
