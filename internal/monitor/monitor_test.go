package monitor

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return epoch.Add(d) }

// TestStoreRingOverwrite pins the ring semantics: a store of capacity 4
// retains exactly the last 4 points, oldest first.
func TestStoreRingOverwrite(t *testing.T) {
	st := NewStore(4)
	for i := 0; i < 10; i++ {
		st.Append("m", map[string]string{"a": "1"}, at(time.Duration(i)*time.Second), float64(i))
	}
	series := st.Select("m", nil)
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained = %d, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
	}
}

// TestStoreSelectMatch pins subset label matching and isolation between
// label sets of the same name.
func TestStoreSelectMatch(t *testing.T) {
	st := NewStore(0)
	st.Append("m", map[string]string{"server": "a", "region": "eu"}, at(0), 1)
	st.Append("m", map[string]string{"server": "b", "region": "us"}, at(0), 2)
	if got := len(st.Select("m", nil)); got != 2 {
		t.Fatalf("unconstrained select = %d series, want 2", got)
	}
	sel := st.Select("m", map[string]string{"region": "us"})
	if len(sel) != 1 || sel[0].Points[0].V != 2 {
		t.Fatalf("matched select = %+v", sel)
	}
	if got := len(st.Select("m", map[string]string{"region": "apac"})); got != 0 {
		t.Fatalf("unmatched select = %d series, want 0", got)
	}
}

// TestStoreHistDeltas pins the windowed histogram delta: the increase
// between the first and last snapshots inside the window, quantile-ready.
func TestStoreHistDeltas(t *testing.T) {
	st := NewStore(0)
	bounds := []float64{0.01, 0.1, 1}
	snap := func(c1, c2, c3, inf uint64) metrics.Sample {
		return metrics.Sample{
			BucketCounts: []uint64{c1, c2, c3, inf},
			Count:        inf,
			Sum:          float64(inf) * 0.05,
		}
	}
	st.AppendHist("h", nil, bounds, at(0), snap(10, 10, 10, 10))
	st.AppendHist("h", nil, bounds, at(time.Minute), snap(20, 30, 30, 30))
	st.AppendHist("h", nil, bounds, at(2*time.Minute), snap(20, 40, 40, 40))

	wins := st.HistDeltas("h", nil, at(0), at(2*time.Minute))
	if len(wins) != 1 {
		t.Fatalf("windows = %d, want 1", len(wins))
	}
	d := wins[0].Delta
	if d.Count != 30 || d.BucketCounts[0] != 10 || d.BucketCounts[1] != 30 {
		t.Fatalf("delta = %+v", d)
	}
	// p50 of the delta (10 in first bucket, 20 more by the second) lands
	// inside the second bucket (interpolated).
	if q := metrics.Quantile(wins[0].Bounds, d, 0.5); q <= 0.01 || q > 0.1 {
		t.Errorf("p50 = %v, want in (0.01, 0.1]", q)
	}
	// A window covering a single snapshot yields nothing.
	if wins := st.HistDeltas("h", nil, at(0), at(30*time.Second)); len(wins) != 0 {
		t.Errorf("single-snapshot window yielded %d deltas", len(wins))
	}
}

// TestCollectorRegistry pins the registry source path: gathered families
// land in the store under their label sets plus the instance label.
func TestCollectorRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.NewCounterVec("test_ops_total", "ops", "op")
	c.With("get").Add(1)
	c.With("put").Add(2)
	h := reg.NewHistogramVec("test_lat_seconds", "latency", []float64{0.1, 1}, "op")
	h.With("get").Observe(0.05)

	st := NewStore(0)
	col := &Collector{Store: st, Sources: []Source{RegistrySource{Name: "srv-a", Registry: reg}}}
	if err := col.Collect(at(0)); err != nil {
		t.Fatalf("collect: %v", err)
	}
	sel := st.Select("test_ops_total", map[string]string{"op": "put", "instance": "srv-a"})
	if len(sel) != 1 || sel[0].Points[0].V != 2 {
		t.Fatalf("counter series = %+v", sel)
	}
	c.With("put").Add(3)
	h.With("get").Observe(0.2)
	if err := col.Collect(at(time.Minute)); err != nil {
		t.Fatalf("collect: %v", err)
	}
	wins := st.HistDeltas("test_lat_seconds", map[string]string{"op": "get"}, at(0), at(time.Minute))
	if len(wins) != 1 {
		t.Fatalf("hist windows = %+v", wins)
	}
}

// TestCollectorHTTP scrapes a real /metrics endpoint end to end through
// ParseText, and keeps collecting past a failing source.
func TestCollectorHTTP(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewCounter("scraped_total", "x").Add(7)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	st := NewStore(0)
	col := &Collector{Store: st, Sources: []Source{
		HTTPSource{Name: "dead", URL: "http://127.0.0.1:1/metrics"},
		HTTPSource{Name: "live", URL: srv.URL},
	}}
	err := col.Collect(at(0))
	if err == nil {
		t.Fatal("want joined error from the dead source")
	}
	sel := st.Select("scraped_total", map[string]string{"instance": "live"})
	if len(sel) != 1 || sel[0].Points[0].V != 7 {
		t.Fatalf("scraped series = %+v (err %v)", sel, err)
	}
}

// TestRuleThresholdLifecycle walks ok → pending (For) → firing → resolved
// and checks the emitted transitions.
func TestRuleThresholdLifecycle(t *testing.T) {
	st := NewStore(0)
	ev := NewEvaluator(st, []Rule{{
		Name: "depth", Kind: KindThreshold, Metric: "depth", Max: F(10), For: time.Minute,
	}})

	st.Append("depth", nil, at(0), 5)
	if alerts := ev.Eval(at(0)); len(alerts) != 0 {
		t.Fatalf("healthy eval emitted %v", alerts)
	}
	// Violating, but inside the For grace: pending, no alert.
	st.Append("depth", nil, at(30*time.Second), 50)
	if alerts := ev.Eval(at(30 * time.Second)); len(alerts) != 0 {
		t.Fatalf("pending eval emitted %v", alerts)
	}
	// Still violating past For: fires.
	st.Append("depth", nil, at(2*time.Minute), 60)
	alerts := ev.Eval(at(2 * time.Minute))
	if len(alerts) != 1 || alerts[0].State != StateFiring || alerts[0].Value != 60 {
		t.Fatalf("firing eval = %v", alerts)
	}
	if firing := ev.Firing(); len(firing) != 1 || firing[0] != "depth" {
		t.Fatalf("firing = %v", firing)
	}
	// Recovery resolves.
	st.Append("depth", nil, at(3*time.Minute), 2)
	alerts = ev.Eval(at(3 * time.Minute))
	if len(alerts) != 1 || alerts[0].State != StateOK {
		t.Fatalf("resolve eval = %v", alerts)
	}
	if len(ev.Firing()) != 0 {
		t.Fatal("still firing after recovery")
	}
}

// TestRuleRatio pins the DenMetric form: windowed hit ratio under a Min
// floor, with a zero-increase denominator yielding no data (not a fire).
func TestRuleRatio(t *testing.T) {
	st := NewStore(0)
	ev := NewEvaluator(st, []Rule{{
		Name: "hit-floor", Kind: KindThreshold,
		Metric: "hits", DenMetric: "gets",
		Window: time.Minute, Min: F(0.5),
	}})
	st.Append("hits", nil, at(0), 100)
	st.Append("gets", nil, at(0), 100)
	st.Append("hits", nil, at(30*time.Second), 110)
	st.Append("gets", nil, at(30*time.Second), 200)
	// Ratio over the window: 10/100 = 0.1 < 0.5 → fires (For = 0).
	alerts := ev.Eval(at(30 * time.Second))
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("ratio eval = %v", alerts)
	}
	if v := alerts[0].Value; v < 0.09 || v > 0.11 {
		t.Fatalf("ratio value = %v, want ~0.1", v)
	}
	// Idle window (no counter movement): no data, keeps firing silently.
	st.Append("hits", nil, at(5*time.Minute), 110)
	st.Append("gets", nil, at(5*time.Minute), 200)
	if alerts := ev.Eval(at(10 * time.Minute)); len(alerts) != 0 {
		t.Fatalf("idle eval emitted %v", alerts)
	}
	if len(ev.Firing()) != 1 {
		t.Fatal("no-data cleared a firing rule")
	}
}

// TestRuleQuantile pins the histogram form: p99 over the window's delta
// against a Max ceiling.
func TestRuleQuantile(t *testing.T) {
	st := NewStore(0)
	bounds := []float64{0.01, 0.1, 1}
	ev := NewEvaluator(st, []Rule{{
		Name: "p99", Kind: KindThreshold, Metric: "lat",
		Quantile: 0.99, Window: time.Minute, Max: F(0.05),
	}})
	st.AppendHist("lat", nil, bounds, at(0), metrics.Sample{BucketCounts: []uint64{0, 0, 0, 0}})
	// 100 observations all in the first bucket: p99 ≈ 0.01, under ceiling.
	st.AppendHist("lat", nil, bounds, at(30*time.Second), metrics.Sample{BucketCounts: []uint64{100, 100, 100, 100}, Count: 100})
	if alerts := ev.Eval(at(30 * time.Second)); len(alerts) != 0 {
		t.Fatalf("fast eval emitted %v", alerts)
	}
	// The next window's 100 observations land in the second bucket: p99 0.1.
	st.AppendHist("lat", nil, bounds, at(90*time.Second), metrics.Sample{BucketCounts: []uint64{100, 200, 200, 200}, Count: 200})
	alerts := ev.Eval(at(90 * time.Second))
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("slow eval = %v", alerts)
	}
}

// TestRuleRate pins the growth detector: per-second slope over the window.
func TestRuleRate(t *testing.T) {
	st := NewStore(0)
	ev := NewEvaluator(st, []Rule{{
		Name: "goroutines", Kind: KindRate, Metric: "g",
		Window: time.Minute, Max: F(10),
	}})
	st.Append("g", nil, at(0), 100)
	st.Append("g", nil, at(30*time.Second), 103)
	if alerts := ev.Eval(at(30 * time.Second)); len(alerts) != 0 {
		t.Fatalf("slow growth emitted %v", alerts)
	}
	st.Append("g", nil, at(60*time.Second), 1000)
	alerts := ev.Eval(at(60 * time.Second))
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("fast growth eval = %v", alerts)
	}
}

// TestRuleBurnRate pins the two-window form: sustained violation fires,
// a recovered short window holds it back.
func TestRuleBurnRate(t *testing.T) {
	st := NewStore(0)
	rule := Rule{
		Name: "err-burn", Kind: KindBurnRate, Metric: "errs",
		Window: 10 * time.Minute, Short: time.Minute, Burn: 0.5, Max: F(0.1),
	}
	ev := NewEvaluator(st, []Rule{rule})
	// 10 minutes of violation at 1/min: both windows violate.
	for i := 0; i <= 10; i++ {
		st.Append("errs", nil, at(time.Duration(i)*time.Minute), 0.9)
	}
	alerts := ev.Eval(at(10 * time.Minute))
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("sustained eval = %v", alerts)
	}

	// Fresh evaluator, same history, but the short window has recovered:
	// the long window still violates (>50% of its points) yet the recent
	// minute is clean, so the rule holds back.
	st2 := NewStore(0)
	ev2 := NewEvaluator(st2, []Rule{rule})
	for i := 0; i <= 8; i++ {
		st2.Append("errs", nil, at(time.Duration(i)*time.Minute), 0.9)
	}
	st2.Append("errs", nil, at(9*time.Minute+30*time.Second), 0.01)
	st2.Append("errs", nil, at(10*time.Minute), 0.01)
	if alerts := ev2.Eval(at(10 * time.Minute)); len(alerts) != 0 {
		t.Fatalf("recovered short window still fired: %v", alerts)
	}
}

// TestDetectDrift pins the early/late comparison: a monotonic climb in
// the bad direction flags, a flat series and an improvement do not.
func TestDetectDrift(t *testing.T) {
	st := NewStore(0)
	for i := 0; i < 40; i++ {
		ts := at(time.Duration(i) * time.Minute)
		st.Append("climbing", nil, ts, 100+float64(i)*5) // +200% over the run
		st.Append("flat", nil, ts, 100+float64(i%2))
		st.Append("improving", nil, ts, 300-float64(i)*5)
	}
	checks := []DriftCheck{
		{Name: "climb", Metric: "climbing", BadDirection: "up", Tolerance: 0.2},
		{Name: "flat", Metric: "flat", BadDirection: "up", Tolerance: 0.2},
		{Name: "improve", Metric: "improving", BadDirection: "up", Tolerance: 0.2},
	}
	findings := DetectDrift(st, checks, at(0), at(40*time.Minute))
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3: %+v", len(findings), findings)
	}
	byCheck := map[string]DriftFinding{}
	for _, f := range findings {
		byCheck[f.Check] = f
	}
	if f := byCheck["climb"]; !f.Flagged || !f.Monotonic || f.Change < 0.2 {
		t.Errorf("climb finding = %+v, want flagged monotonic up", f)
	}
	if f := byCheck["flat"]; f.Flagged {
		t.Errorf("flat finding flagged: %+v", f)
	}
	if f := byCheck["improve"]; f.Flagged {
		t.Errorf("improvement flagged: %+v", f)
	}
}

// TestDetectDriftDown pins the "down is bad" direction — a sagging hit
// ratio flags.
func TestDetectDriftDown(t *testing.T) {
	st := NewStore(0)
	for i := 0; i < 40; i++ {
		st.Append("ratio", nil, at(time.Duration(i)*time.Minute), 0.9-float64(i)*0.01)
	}
	findings := DetectDrift(st, []DriftCheck{
		{Name: "sag", Metric: "ratio", BadDirection: "down", Tolerance: 0.2},
	}, at(0), at(40*time.Minute))
	if len(findings) != 1 || !findings[0].Flagged {
		t.Fatalf("sag findings = %+v, want flagged", findings)
	}
}

// TestHealthEndpoint drives /debug/health from red to green on a virtual
// clock: a registry gauge crosses the rule ceiling, the endpoint serves
// 503 with the failing rule named, the gauge recovers, 200 returns.
func TestHealthEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	depth := reg.NewGauge("depth", "queue depth")
	h := NewRegistryHealth("test", reg, []Rule{{
		Name: "sat", Kind: KindThreshold, Metric: "depth", Max: F(10),
	}})
	now := at(0)
	h.Now = func() time.Time { return now }

	serve := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/health", nil))
		return w
	}

	depth.Set(3)
	if w := serve(); w.Code != 200 {
		t.Fatalf("healthy = %d: %s", w.Code, w.Body)
	}
	now = at(time.Minute)
	depth.Set(500)
	w := serve()
	if w.Code != 503 {
		t.Fatalf("saturated = %d: %s", w.Code, w.Body)
	}
	if body := w.Body.String(); !containsAll(body, `"failing"`, `"sat"`, `"firing"`) {
		t.Fatalf("503 body missing fields: %s", body)
	}
	now = at(2 * time.Minute)
	depth.Set(1)
	if w := serve(); w.Code != 200 {
		t.Fatalf("recovered = %d: %s", w.Code, w.Body)
	}
	// The transitions were recorded: firing then resolved.
	alerts := h.Alerts()
	if len(alerts) != 2 || alerts[0].State != StateFiring || alerts[1].State != StateOK {
		t.Fatalf("alerts = %v", alerts)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
