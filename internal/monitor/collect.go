package monitor

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// Source is one place metric families come from: an in-process registry
// (the health endpoint watching its own server) or a remote /metrics
// endpoint (agar-mon watching a cluster).
type Source interface {
	// Instance names the source; when non-empty it is attached to every
	// collected series as an "instance" label so multi-target collectors
	// keep servers apart.
	Instance() string
	// Gather snapshots the source's current families.
	Gather() ([]metrics.Family, error)
}

// RegistrySource adapts an in-process metrics registry.
type RegistrySource struct {
	Name     string
	Registry *metrics.Registry
}

// Instance implements Source.
func (s RegistrySource) Instance() string { return s.Name }

// Gather implements Source.
func (s RegistrySource) Gather() ([]metrics.Family, error) {
	return s.Registry.Gather(), nil
}

// HTTPSource scrapes a Prometheus text-format endpoint — a server's
// -metrics-addr /metrics — through the scrape-side parser.
type HTTPSource struct {
	Name string
	URL  string
	// Client defaults to a 5-second-timeout client.
	Client *http.Client
}

// Instance implements Source.
func (s HTTPSource) Instance() string { return s.Name }

// Gather implements Source.
func (s HTTPSource) Gather() ([]metrics.Family, error) {
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Get(s.URL)
	if err != nil {
		return nil, fmt.Errorf("monitor: scrape %s: %w", s.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("monitor: scrape %s: status %d", s.URL, resp.StatusCode)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("monitor: scrape %s: %w", s.URL, err)
	}
	return fams, nil
}

// Collector fills a Store from a set of sources. It owns no goroutine and
// no clock: callers invoke Collect at the cadence and on the timeline they
// choose — a ticker against a live cluster, virtual sample boundaries
// under a soak, or per-request from the health endpoint.
type Collector struct {
	Store   *Store
	Sources []Source
}

// Collect gathers every source once, stamping all series at instant now.
// A failing source is skipped (its error joined into the return) so one
// browned-out server doesn't blind the collector to the rest.
func (c *Collector) Collect(now time.Time) error {
	var errs []error
	for _, src := range c.Sources {
		fams, err := src.Gather()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		instance := src.Instance()
		for _, f := range fams {
			for _, s := range f.Samples {
				labels := make(map[string]string, len(f.Labels)+1)
				for i, name := range f.Labels {
					if i < len(s.LabelValues) {
						labels[name] = s.LabelValues[i]
					}
				}
				if instance != "" {
					labels["instance"] = instance
				}
				if f.Kind == metrics.KindHistogram {
					c.Store.AppendHist(f.Name, labels, f.Buckets, now, s)
				} else {
					c.Store.Append(f.Name, labels, now, s.Value)
				}
			}
		}
	}
	return errors.Join(errs...)
}
