package monitor

import (
	"math"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// DriftCheck describes one slow-degradation detector: it segments a
// series' whole retained timeline, aggregates each segment, and compares
// the earliest aggregate against the latest. Where rules catch acute
// violations, drift checks catch the leak that never crosses a threshold
// but only ever gets worse over a multi-hour soak.
type DriftCheck struct {
	Name   string            `json:"name"`
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// Quantile, when in (0, 1], aggregates each segment as that quantile
	// of the histogram Metric's increase over the segment; otherwise each
	// segment is the mean of the scalar series' points.
	Quantile float64 `json:"quantile,omitempty"`
	// BadDirection is "up" (latency, heap, errors) or "down" (hit ratio,
	// throughput); drift the other way is improvement, never flagged.
	BadDirection string `json:"bad_direction"`
	// Tolerance is the relative early→late change below which drift is
	// noise (e.g. 0.2 = flag only ≥20% degradation).
	Tolerance float64 `json:"tolerance"`
	// Segments defaults to 4.
	Segments int `json:"segments,omitempty"`
}

// DriftFinding is one check's verdict over one series.
type DriftFinding struct {
	Check  string            `json:"check"`
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// Segments holds the per-segment aggregates, oldest first.
	Segments []float64 `json:"segments"`
	Early    float64   `json:"early"`
	Late     float64   `json:"late"`
	// Change is the relative early→late movement, signed.
	Change float64 `json:"change"`
	// Monotonic reports the aggregates moved in one direction (with slack
	// of 10% of the total movement per step).
	Monotonic bool `json:"monotonic"`
	// Flagged: movement is in the bad direction, beyond tolerance, and
	// monotonic — degradation, not a transient.
	Flagged bool `json:"flagged"`
}

// DetectDrift runs every check over the store's full retained timeline
// between from and to, returning one finding per matching series that
// had enough data to segment.
func DetectDrift(st *Store, checks []DriftCheck, from, to time.Time) []DriftFinding {
	var out []DriftFinding
	for _, c := range checks {
		segments := c.Segments
		if segments <= 0 {
			segments = 4
		}
		if !to.After(from) {
			continue
		}
		segDur := to.Sub(from) / time.Duration(segments)
		if c.Quantile > 0 {
			out = append(out, c.driftHist(st, from, segDur, segments)...)
		} else {
			out = append(out, c.driftScalar(st, from, segDur, segments)...)
		}
	}
	return out
}

func (c DriftCheck) driftScalar(st *Store, from time.Time, segDur time.Duration, segments int) []DriftFinding {
	var out []DriftFinding
	for _, s := range st.Select(c.Metric, c.Labels) {
		aggs := make([]float64, 0, segments)
		complete := true
		for i := 0; i < segments; i++ {
			lo := from.Add(time.Duration(i) * segDur)
			hi := lo.Add(segDur)
			var sum float64
			var n int
			for _, p := range s.Points {
				if p.T.Before(lo) || !p.T.Before(hi) {
					continue
				}
				sum += p.V
				n++
			}
			if n == 0 {
				complete = false
				break
			}
			aggs = append(aggs, sum/float64(n))
		}
		if !complete {
			continue
		}
		out = append(out, c.finding(s.Labels, aggs))
	}
	return out
}

func (c DriftCheck) driftHist(st *Store, from time.Time, segDur time.Duration, segments int) []DriftFinding {
	// Group per label signature: every segment must yield a window for the
	// same series or the series is skipped as incomplete.
	perSig := make(map[string][]float64)
	labelsBySig := make(map[string]map[string]string)
	for i := 0; i < segments; i++ {
		lo := from.Add(time.Duration(i) * segDur)
		hi := lo.Add(segDur)
		for _, w := range st.HistDeltas(c.Metric, c.Labels, lo, hi) {
			if w.Delta.Count == 0 {
				continue
			}
			sig := labelSig(w.Labels)
			if len(perSig[sig]) != i {
				continue // missed an earlier segment; stays incomplete
			}
			perSig[sig] = append(perSig[sig], metrics.Quantile(w.Bounds, w.Delta, c.Quantile))
			labelsBySig[sig] = w.Labels
		}
	}
	var out []DriftFinding
	for sig, aggs := range perSig {
		if len(aggs) != segments {
			continue
		}
		out = append(out, c.finding(labelsBySig[sig], aggs))
	}
	return out
}

// finding judges one series' segment aggregates.
func (c DriftCheck) finding(labels map[string]string, aggs []float64) DriftFinding {
	early, late := aggs[0], aggs[len(aggs)-1]
	change := (late - early) / math.Max(math.Abs(early), 1e-9)
	slack := 0.1 * math.Abs(late-early)
	monotonic := true
	for i := 1; i < len(aggs); i++ {
		step := aggs[i] - aggs[i-1]
		if late >= early && step < -slack {
			monotonic = false
		}
		if late < early && step > slack {
			monotonic = false
		}
	}
	bad := (c.BadDirection == "up" && change > 0) || (c.BadDirection == "down" && change < 0)
	return DriftFinding{
		Check:     c.Name,
		Metric:    c.Metric,
		Labels:    copyLabels(labels),
		Segments:  aggs,
		Early:     early,
		Late:      late,
		Change:    change,
		Monotonic: monotonic,
		Flagged:   bad && math.Abs(change) >= c.Tolerance && monotonic,
	}
}
