package monitor_test

// End-to-end readiness flip against a real wire server: saturate a cache
// server's dispatch queue with pipelined batch reads until /debug/health
// answers 503 with the queue rule firing, stop the load, and watch it
// recover to 200. This is the contract the soak scenarios and deployment
// probes both rely on: red under pressure, green after the drain.

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
)

func TestHealthFlipUnderSaturation(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cache.NewSharded(64<<20, 4, func() cache.Policy { return cache.NewLRU() })
	srv, err := live.NewCacheServerOpts("127.0.0.1:0", c, nil, live.ServerOptions{
		Registry: reg, Region: "test",
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	// The rule under test: any queued dispatch work is "saturated". A real
	// deployment uses DefaultServerRules' looser ceiling; pinning the flip
	// mechanics only needs the threshold to sit below the load we generate.
	health := monitor.NewRegistryHealth("test", reg, []monitor.Rule{{
		Name:   "queue-saturation",
		Kind:   monitor.KindThreshold,
		Metric: metrics.NameServerQueueDepth,
		Max:    monitor.F(0),
	}})
	hsrv := httptest.NewServer(health)
	defer hsrv.Close()

	// Seed chunks so the saturating mgets do real work.
	seed, err := live.DialPipelined(srv.Addr(), 16)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	payload := make([]byte, 8<<10)
	indices := make([]int, 32)
	for i := range indices {
		indices[i] = i
		if err := seed.Put("obj", i, payload); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}
	seed.Close()

	probe := func() int {
		resp, err := hsrv.Client().Get(hsrv.URL)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := probe(); code != 200 {
		t.Fatalf("idle health = %d, want 200", code)
	}

	// Saturate: several clients keep a deep pipeline of wide batch reads
	// in flight so the shard dispatch queue is visibly non-empty.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		cl, err := live.DialPipelined(srv.Addr(), 64)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			var pending []*live.PendingReply
			for {
				select {
				case <-stop:
					for _, p := range pending {
						_, _ = p.Wait()
					}
					return
				default:
				}
				pending = append(pending, cl.GoMGet("obj", indices))
				if len(pending) >= 16 {
					_, _ = pending[0].Wait()
					pending = pending[1:]
				}
			}
		}()
	}

	sawRed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if probe() == 503 {
			sawRed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !sawRed {
		t.Fatal("health never went red under saturation")
	}

	// Drained: the gauge reads zero again, so the endpoint recovers.
	sawGreen := false
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if probe() == 200 {
			sawGreen = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawGreen {
		t.Fatal("health never recovered after the load stopped")
	}
}
