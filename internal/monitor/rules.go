package monitor

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// RuleKind selects how a rule turns its series into a signal.
type RuleKind string

const (
	// KindThreshold compares a signal against Min/Max bounds. The signal is
	// the latest scalar point (staleness-bounded by Window), a windowed
	// ratio when DenMetric is set, or a windowed histogram quantile when
	// Quantile is set.
	KindThreshold RuleKind = "threshold"
	// KindRate compares the signal's per-second rate of change over Window
	// against Min/Max — growth detectors for goroutines and heap.
	KindRate RuleKind = "rate"
	// KindBurnRate fires when the fraction of threshold-violating points
	// exceeds Burn over both the long Window and the short Short window —
	// the classic two-window burn-rate form: the long window proves the
	// violation is sustained, the short one proves it is still happening.
	KindBurnRate RuleKind = "burn-rate"
)

// Rule is one declarative check over the store. Zero-value fields are
// inert, so literals read like the SLO they encode.
type Rule struct {
	// Name identifies the rule in alerts and the health document.
	Name string   `json:"name"`
	Kind RuleKind `json:"kind"`
	// Metric is the series (or histogram family, with Quantile) watched.
	Metric string `json:"metric"`
	// Labels constrains which series of the metric are evaluated; every
	// matching series is checked and any violation fires the rule.
	Labels map[string]string `json:"labels,omitempty"`
	// DenMetric, when set, makes the signal a windowed ratio: the increase
	// of Metric over Window divided by the increase of DenMetric (both
	// counters). A zero-increase denominator yields no signal.
	DenMetric string `json:"den_metric,omitempty"`
	// Quantile, when in (0, 1], makes the signal a quantile of the
	// histogram Metric's increase over Window.
	Quantile float64 `json:"quantile,omitempty"`
	// Window is the evaluation lookback. For plain thresholds it is a
	// staleness bound on the latest point (0 = any age).
	Window time.Duration `json:"window,omitempty"`
	// Short is the burn-rate confirmation window (default Window/12,
	// mirroring the 1h/5m convention).
	Short time.Duration `json:"short,omitempty"`
	// Burn is the violating-point fraction both burn-rate windows must
	// exceed (default 0.5).
	Burn float64 `json:"burn,omitempty"`
	// MinPoints is the least evidence a burn-rate long window must hold
	// before the rule judges it (default 3); sparser windows report no
	// data. Keeps a single cold sample after startup from firing alone.
	MinPoints int `json:"min_points,omitempty"`
	// Min and Max bound the signal; nil bounds are unchecked. Use F to
	// take literals' addresses.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// For delays firing until the violation has persisted this long.
	For time.Duration `json:"for,omitempty"`
}

// F returns v's address — sugar for Rule{Max: F(250)} literals.
func F(v float64) *float64 { return &v }

// violated reports whether v breaks the rule's bounds.
func (r Rule) violated(v float64) bool {
	if r.Min != nil && v < *r.Min {
		return true
	}
	if r.Max != nil && v > *r.Max {
		return true
	}
	return false
}

// window returns the rule's lookback with a floor: windowless rate and
// burn-rate rules get a minute so they can't divide by zero.
func (r Rule) window() time.Duration {
	if r.Window > 0 {
		return r.Window
	}
	return time.Minute
}

// RuleState labels one rule's position in the firing lifecycle.
type RuleState string

const (
	StateOK      RuleState = "ok"
	StatePending RuleState = "pending" // violating, inside the For grace
	StateFiring  RuleState = "firing"
	StateNoData  RuleState = "no-data" // no signal; prior state is kept
)

// Alert is one timestamped transition emitted by the evaluator.
type Alert struct {
	Rule string `json:"rule"`
	// State is the state transitioned into: firing or ok (resolved).
	State RuleState `json:"state"`
	At    time.Time `json:"at"`
	// Value is the worst signal observed at the transition (zero on
	// resolve), Labels the series that produced it.
	Value  float64           `json:"value,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
}

func (a Alert) String() string {
	return fmt.Sprintf("%s %s at %s (value %.4g)", a.Rule, a.State, a.At.Format(time.RFC3339), a.Value)
}

// signal is one evaluated series' reading.
type signal struct {
	value  float64
	labels map[string]string
}

// evalSignals computes the rule's signal for every matching series at
// instant now. An empty result means no data.
func (r Rule) evalSignals(st *Store, now time.Time) []signal {
	from := now.Add(-r.window())
	switch {
	case r.Quantile > 0:
		wins := st.HistDeltas(r.Metric, r.Labels, from, now)
		out := make([]signal, 0, len(wins))
		for _, w := range wins {
			if w.Delta.Count == 0 {
				continue
			}
			out = append(out, signal{value: metrics.Quantile(w.Bounds, w.Delta, r.Quantile), labels: w.Labels})
		}
		return out
	case r.DenMetric != "":
		nums := st.Select(r.Metric, r.Labels)
		dens := st.Select(r.DenMetric, r.Labels)
		denBySig := make(map[string][]Point, len(dens))
		for _, d := range dens {
			denBySig[labelSig(d.Labels)] = d.Points
		}
		var out []signal
		for _, n := range nums {
			den, ok := denBySig[labelSig(n.Labels)]
			if !ok {
				continue
			}
			dn, okN := increase(n.Points, from, now)
			dd, okD := increase(den, from, now)
			if !okN || !okD || dd <= 0 {
				continue
			}
			out = append(out, signal{value: dn / dd, labels: n.Labels})
		}
		return out
	case r.Kind == KindRate:
		var out []signal
		for _, s := range st.Select(r.Metric, r.Labels) {
			first, last, n := windowEnds(s.Points, from, now)
			if n < 2 || !last.T.After(first.T) {
				continue
			}
			rate := (last.V - first.V) / last.T.Sub(first.T).Seconds()
			out = append(out, signal{value: rate, labels: s.Labels})
		}
		return out
	default:
		return r.latestSignals(st, now)
	}
}

// latestSignals reads the freshest point per matching series, bounded by
// the staleness window when one is set.
func (r Rule) latestSignals(st *Store, now time.Time) []signal {
	var out []signal
	for _, s := range st.Select(r.Metric, r.Labels) {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		if r.Window > 0 && now.Sub(p.T) > r.Window {
			continue
		}
		out = append(out, signal{value: p.V, labels: s.Labels})
	}
	return out
}

// increase returns the counter increase across [from, to] within points,
// reset-clamped to zero like metrics.DeltaSample.
func increase(points []Point, from, to time.Time) (float64, bool) {
	first, last, n := windowEnds(points, from, to)
	if n < 2 {
		return 0, false
	}
	d := last.V - first.V
	if d < 0 {
		d = 0
	}
	return d, true
}

// windowEnds returns the first and last points inside [from, to] and how
// many the window holds.
func windowEnds(points []Point, from, to time.Time) (first, last Point, n int) {
	for _, p := range points {
		if p.T.Before(from) || p.T.After(to) {
			continue
		}
		if n == 0 {
			first = p
		}
		last = p
		n++
	}
	return first, last, n
}

// burnSignals evaluates the two-window burn-rate form: per matching
// series, the fraction of bound-violating points must exceed Burn over
// both the long and the short window for the series to report a
// violating signal. Quiet series report NaN so the evaluator can tell
// healthy apart from no-data.
func (r Rule) burnSignals(st *Store, now time.Time) []signal {
	long := r.window()
	short := r.Short
	if short <= 0 {
		short = long / 12
		if short <= 0 {
			short = long
		}
	}
	burn := r.Burn
	if burn <= 0 {
		burn = 0.5
	}
	minPts := r.MinPoints
	if minPts <= 0 {
		minPts = 3
	}
	var out []signal
	for _, s := range st.Select(r.Metric, r.Labels) {
		frac := func(w time.Duration) (float64, float64, int) {
			var viol, total int
			worst := math.Inf(-1)
			for _, p := range s.Points {
				if p.T.Before(now.Add(-w)) || p.T.After(now) {
					continue
				}
				total++
				if r.violated(p.V) {
					viol++
					if p.V > worst {
						worst = p.V
					}
				}
			}
			if total == 0 {
				return 0, 0, 0
			}
			return float64(viol) / float64(total), worst, total
		}
		longFrac, worst, nLong := frac(long)
		shortFrac, _, nShort := frac(short)
		// The long window must hold real evidence before it is judged; a
		// near-empty window right after startup proves nothing either way.
		if nLong < minPts || nShort == 0 {
			continue
		}
		if longFrac >= burn && shortFrac >= burn {
			out = append(out, signal{value: worst, labels: s.Labels})
		} else {
			// Healthy series still report a (non-violating) signal so the
			// evaluator distinguishes "quiet" from "no data": value is the
			// long-window violating fraction, which by construction is
			// below burn and thus never re-violates bounds downstream.
			out = append(out, signal{value: math.NaN(), labels: s.Labels})
		}
	}
	return out
}

// ruleState is the evaluator's per-rule memory.
type ruleState struct {
	state        RuleState
	pendingSince time.Time
	firingSince  time.Time
}

// RuleStatus is one rule's current standing, served by /debug/health.
type RuleStatus struct {
	Rule  string    `json:"rule"`
	State RuleState `json:"state"`
	// Value is the worst current signal (omitted when no data).
	Value float64 `json:"value,omitempty"`
	// Since stamps when the current firing began.
	Since  time.Time         `json:"since,omitzero"`
	Labels map[string]string `json:"labels,omitempty"`
}

// Evaluator runs a rule set against a store, tracking per-rule firing
// state across evaluations and emitting alert transitions.
type Evaluator struct {
	Store *Store
	Rules []Rule

	states map[string]*ruleState
}

// NewEvaluator returns an evaluator over the store with the given rules.
func NewEvaluator(st *Store, rules []Rule) *Evaluator {
	return &Evaluator{Store: st, Rules: rules, states: make(map[string]*ruleState)}
}

// Eval evaluates every rule at instant now and returns the transitions
// (newly firing, newly resolved) this evaluation produced. Not safe for
// concurrent use — serialize calls (Health does).
func (e *Evaluator) Eval(now time.Time) []Alert {
	if e.states == nil {
		e.states = make(map[string]*ruleState)
	}
	var alerts []Alert
	for _, r := range e.Rules {
		st := e.states[r.Name]
		if st == nil {
			st = &ruleState{state: StateOK}
			e.states[r.Name] = st
		}
		var sigs []signal
		if r.Kind == KindBurnRate {
			sigs = r.burnSignals(e.Store, now)
		} else {
			sigs = r.evalSignals(e.Store, now)
		}
		if len(sigs) == 0 {
			// No data: keep a firing rule firing (a saturated server that
			// stops answering scrapes is not healthy), drop pending back.
			if st.state == StatePending {
				st.state = StateOK
			}
			if st.state != StateFiring {
				st.state = StateNoData
			}
			continue
		}
		worst, hasViolation := worstSignal(r, sigs)
		switch {
		case hasViolation && st.state == StateFiring:
			// still firing — no transition
		case hasViolation:
			if st.pendingSince.IsZero() {
				st.pendingSince = now
			}
			if now.Sub(st.pendingSince) >= r.For {
				st.state = StateFiring
				st.firingSince = now
				alerts = append(alerts, Alert{Rule: r.Name, State: StateFiring, At: now, Value: worst.value, Labels: worst.labels})
			} else {
				st.state = StatePending
			}
		default:
			if st.state == StateFiring {
				alerts = append(alerts, Alert{Rule: r.Name, State: StateOK, At: now})
			}
			st.state = StateOK
			st.pendingSince = time.Time{}
			st.firingSince = time.Time{}
		}
		if !hasViolation {
			st.pendingSince = time.Time{}
		}
	}
	return alerts
}

// worstSignal picks the most violating signal (largest violating value;
// for Min-bound rules the smallest). hasViolation is false when every
// signal respects the bounds.
func worstSignal(r Rule, sigs []signal) (signal, bool) {
	var worst signal
	found := false
	for _, s := range sigs {
		if math.IsNaN(s.value) || !r.violated(s.value) {
			continue
		}
		if !found {
			worst, found = s, true
			continue
		}
		if r.Min != nil && r.Max == nil {
			if s.value < worst.value {
				worst = s
			}
		} else if s.value > worst.value {
			worst = s
		}
	}
	return worst, found
}

// Status reports every rule's current standing, sorted by rule name.
func (e *Evaluator) Status() []RuleStatus {
	out := make([]RuleStatus, 0, len(e.Rules))
	for _, r := range e.Rules {
		st := e.states[r.Name]
		rs := RuleStatus{Rule: r.Name, State: StateOK}
		if st != nil {
			rs.State = st.state
			rs.Since = st.firingSince
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// Firing returns the names of currently firing rules, sorted.
func (e *Evaluator) Firing() []string {
	var out []string
	for name, st := range e.states {
		if st.state == StateFiring {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
