// Package monitor is the watch side of the observability layer: where
// internal/metrics emits signals, this package judges them. It keeps a
// scrape-side time-series store (fixed-size per-series rings filled from
// /metrics endpoints or in-process registries), evaluates declarative SLO
// rules over those series (threshold, rate-of-change, and two-window
// burn-rate forms) into timestamped alert events, detects drift across a
// long soak by comparing early-window and late-window aggregates, and
// serves the /debug/health readiness endpoint every server binary mounts.
// Everything is clock-injectable, so soak scenarios evaluate the same
// rules on virtual time that agar-mon evaluates against a live cluster.
package monitor

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// defaultCapacity bounds each series ring when NewStore is given no size:
// at agar-mon's 2 s poll interval it retains ~34 minutes; a soak sampling
// once per virtual minute retains 17 hours.
const defaultCapacity = 1024

// Point is one scalar observation.
type Point struct {
	T time.Time
	V float64
}

// histPoint is one retained histogram scrape (cumulative, not windowed).
type histPoint struct {
	t time.Time
	s metrics.Sample
}

// scalarSeries is a fixed-size ring of points for one label set.
type scalarSeries struct {
	labels map[string]string
	ring   []Point
	start  int // index of the oldest point
	n      int
}

func (s *scalarSeries) append(capacity int, p Point) {
	if len(s.ring) < capacity {
		s.ring = append(s.ring, p)
		s.n = len(s.ring)
		return
	}
	s.ring[(s.start+s.n)%len(s.ring)] = p
	s.start = (s.start + 1) % len(s.ring)
}

// points returns the retained points oldest-first.
func (s *scalarSeries) points() []Point {
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.start+i)%len(s.ring)])
	}
	return out
}

// histSeries is the histogram twin: a ring of cumulative snapshots plus
// the family's bucket bounds, so windows delta and take quantiles.
type histSeries struct {
	labels map[string]string
	bounds []float64
	ring   []histPoint
	start  int
	n      int
}

func (s *histSeries) append(capacity int, p histPoint) {
	if len(s.ring) < capacity {
		s.ring = append(s.ring, p)
		s.n = len(s.ring)
		return
	}
	s.ring[(s.start+s.n)%len(s.ring)] = p
	s.start = (s.start + 1) % len(s.ring)
}

func (s *histSeries) snapshots() []histPoint {
	out := make([]histPoint, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.start+i)%len(s.ring)])
	}
	return out
}

// Store is the scrape-side time-series store: per-series fixed-size rings
// keyed by metric name and label set. Memory is bounded by construction —
// series count × ring capacity — so it can watch a cluster (or run under a
// multi-hour soak) without growing. Safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	capacity int
	scalars  map[string]map[string]*scalarSeries // name → label sig → ring
	hists    map[string]map[string]*histSeries
}

// NewStore returns an empty store whose rings retain up to capacity points
// each (<= 0 selects the default of 1024).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	return &Store{
		capacity: capacity,
		scalars:  make(map[string]map[string]*scalarSeries),
		hists:    make(map[string]map[string]*histSeries),
	}
}

// labelSig builds a stable signature from a label set.
func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\xfe')
		b.WriteString(labels[k])
		b.WriteByte('\xff')
	}
	return b.String()
}

// copyLabels defends against callers mutating their maps after the fact.
func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// matches reports whether the series labels satisfy every constraint.
func matches(labels, want map[string]string) bool {
	for k, v := range want {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Append records one scalar observation at instant t.
func (st *Store) Append(name string, labels map[string]string, t time.Time, v float64) {
	sig := labelSig(labels)
	st.mu.Lock()
	defer st.mu.Unlock()
	byName := st.scalars[name]
	if byName == nil {
		byName = make(map[string]*scalarSeries)
		st.scalars[name] = byName
	}
	s := byName[sig]
	if s == nil {
		s = &scalarSeries{labels: copyLabels(labels)}
		byName[sig] = s
	}
	s.append(st.capacity, Point{T: t, V: v})
}

// AppendHist records one cumulative histogram snapshot at instant t. The
// bucket counts are copied; bounds are taken from the first append and
// describe every later snapshot of the series.
func (st *Store) AppendHist(name string, labels map[string]string, bounds []float64, t time.Time, sample metrics.Sample) {
	sig := labelSig(labels)
	cp := sample
	cp.BucketCounts = append([]uint64(nil), sample.BucketCounts...)
	cp.Exemplars = nil
	st.mu.Lock()
	defer st.mu.Unlock()
	byName := st.hists[name]
	if byName == nil {
		byName = make(map[string]*histSeries)
		st.hists[name] = byName
	}
	s := byName[sig]
	if s == nil {
		s = &histSeries{labels: copyLabels(labels), bounds: append([]float64(nil), bounds...)}
		byName[sig] = s
	}
	s.append(st.capacity, histPoint{t: t, s: cp})
}

// Series is one scalar series' retained points, oldest-first.
type Series struct {
	Name   string
	Labels map[string]string
	Points []Point
}

// Select returns every scalar series under name whose labels satisfy the
// match constraints (nil matches all), points oldest-first. The result is
// a copy; ordering across series is stable (by label signature).
func (st *Store) Select(name string, match map[string]string) []Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	byName := st.scalars[name]
	if byName == nil {
		return nil
	}
	sigs := make([]string, 0, len(byName))
	for sig, s := range byName {
		if matches(s.labels, match) {
			sigs = append(sigs, sig)
		}
	}
	sort.Strings(sigs)
	out := make([]Series, 0, len(sigs))
	for _, sig := range sigs {
		s := byName[sig]
		out = append(out, Series{Name: name, Labels: copyLabels(s.labels), Points: s.points()})
	}
	return out
}

// HistWindow is one histogram series' windowed delta: the increase between
// the first and last snapshots inside a time window, plus the bucket
// bounds needed to take quantiles of it.
type HistWindow struct {
	Name   string
	Labels map[string]string
	Bounds []float64
	// Delta is the windowed increase (DeltaSample of the window's last and
	// first snapshots); Delta.Count is the observations inside the window.
	Delta metrics.Sample
}

// HistDeltas returns, per matching histogram series, the delta between the
// last and first retained snapshots with timestamps in [from, to]. Series
// with fewer than two snapshots in the window are omitted — one snapshot
// bounds no interval.
func (st *Store) HistDeltas(name string, match map[string]string, from, to time.Time) []HistWindow {
	st.mu.RLock()
	defer st.mu.RUnlock()
	byName := st.hists[name]
	if byName == nil {
		return nil
	}
	sigs := make([]string, 0, len(byName))
	for sig, s := range byName {
		if matches(s.labels, match) {
			sigs = append(sigs, sig)
		}
	}
	sort.Strings(sigs)
	var out []HistWindow
	for _, sig := range sigs {
		s := byName[sig]
		var first, last *histPoint
		for _, hp := range s.snapshots() {
			if hp.t.Before(from) || hp.t.After(to) {
				continue
			}
			hp := hp
			if first == nil {
				first = &hp
			}
			last = &hp
		}
		if first == nil || last == nil || first.t.Equal(last.t) {
			continue
		}
		out = append(out, HistWindow{
			Name:   name,
			Labels: copyLabels(s.labels),
			Bounds: append([]float64(nil), s.bounds...),
			Delta:  metrics.DeltaSample(last.s, first.s),
		})
	}
	return out
}

// Names returns every series name the store holds, sorted — scalar and
// histogram families alike.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := make(map[string]bool, len(st.scalars)+len(st.hists))
	for name := range st.scalars {
		seen[name] = true
	}
	for name := range st.hists {
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
