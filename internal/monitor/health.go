package monitor

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// Health drives the /debug/health readiness endpoint: each GET (or each
// explicit Tick under virtual time) collects the sources, evaluates the
// rule set, and reports 200 when no rule fires, 503 with the failing
// rules when one does. Evaluation is on-demand — no background goroutine
// — so a health check against a wedged server reflects that instant, and
// soaks can drive the same evaluator on a virtual clock.
type Health struct {
	// Now supplies the evaluation instant (default time.Now) — inject a
	// virtual clock's Now for soak tests.
	Now func() time.Time

	mu        sync.Mutex
	collector *Collector
	eval      *Evaluator
	alerts    []Alert
}

// NewHealth wires a collector and rule set into a health endpoint.
func NewHealth(c *Collector, rules []Rule) *Health {
	return &Health{
		collector: c,
		eval:      NewEvaluator(c.Store, rules),
	}
}

// NewRegistryHealth is the server-binary convenience: watch one
// in-process registry under the default per-server rules.
func NewRegistryHealth(instance string, reg *metrics.Registry, rules []Rule) *Health {
	st := NewStore(256)
	return NewHealth(&Collector{
		Store:   st,
		Sources: []Source{RegistrySource{Name: instance, Registry: reg}},
	}, rules)
}

// Tick collects once and evaluates once at instant now, returning the
// alert transitions produced. Scrape errors are tolerated — rules judge
// whatever data arrived.
func (h *Health) Tick(now time.Time) []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	_ = h.collector.Collect(now)
	alerts := h.eval.Eval(now)
	h.alerts = append(h.alerts, alerts...)
	return alerts
}

// Status is the JSON document /debug/health serves.
type Status struct {
	// Status is "ok" or "failing".
	Status    string       `json:"status"`
	CheckedAt time.Time    `json:"checked_at"`
	Rules     []RuleStatus `json:"rules"`
}

// Check ticks once at the injected clock's now and reports the standing.
func (h *Health) Check() Status {
	now := time.Now()
	if h.Now != nil {
		now = h.Now()
	}
	h.Tick(now)
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Status{Status: "ok", CheckedAt: now, Rules: h.eval.Status()}
	for _, r := range st.Rules {
		if r.State == StateFiring {
			st.Status = "failing"
		}
	}
	return st
}

// Alerts returns every transition recorded since construction.
func (h *Health) Alerts() []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Alert(nil), h.alerts...)
}

// ServeHTTP implements the /debug/health endpoint: 200 with the status
// document when every rule holds, 503 with the same document when one
// fires. Readiness probes key on the code; humans read the body.
func (h *Health) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	st := h.Check()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// DefaultServerRules is the rule set every server binary mounts under
// /debug/health: dispatch-queue saturation, goroutine and heap growth,
// and (for cache servers, which register the family) digest staleness.
// Thresholds are deliberately loose — readiness, not alerting.
func DefaultServerRules() []Rule {
	return []Rule{
		{
			Name:   "queue-saturation",
			Kind:   KindThreshold,
			Metric: metrics.NameServerQueueDepth,
			Max:    F(256),
		},
		{
			Name:   "goroutine-growth",
			Kind:   KindRate,
			Metric: metrics.NameGoGoroutines,
			Window: 2 * time.Minute,
			Max:    F(50), // +50 goroutines/s sustained over 2m = a leak
		},
		{
			Name:   "heap-growth",
			Kind:   KindRate,
			Metric: metrics.NameGoHeapAllocBytes,
			Window: 2 * time.Minute,
			Max:    F(64 << 20), // +64 MiB/s sustained growth
		},
		{
			Name:   "digest-stale",
			Kind:   KindThreshold,
			Metric: metrics.NameCoopDigestAgeMS,
			Max:    F(60_000),
		},
	}
}

// DefaultWatchRules is the richer rule set agar-mon evaluates against a
// live cluster: everything in DefaultServerRules plus the SLO-shaped
// forms that need windowed history — the read p99 ceiling and the
// hit-ratio burn rate.
func DefaultWatchRules() []Rule {
	rules := DefaultServerRules()
	rules = append(rules,
		Rule{
			Name:     "read-p99-ceiling",
			Kind:     KindThreshold,
			Metric:   metrics.NameServerOpExecute,
			Quantile: 0.99,
			Window:   time.Minute,
			Max:      F(0.5), // 500 ms server-side execute p99
		},
		Rule{
			Name:      "hit-ratio-floor",
			Kind:      KindThreshold,
			Metric:    metrics.NameCacheHits,
			DenMetric: metrics.NameCacheGets,
			Window:    5 * time.Minute,
			Min:       F(0.05),
			For:       time.Minute,
		},
	)
	return rules
}
