package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseText reads a Prometheus text-format exposition (the format WriteText
// emits) back into Family snapshots, keyed for lookup by SelectSample. It
// understands counters, gauges, and histograms (_bucket/_sum/_count fused
// back into one sample per label set); unknown typed families parse as
// gauges. It exists so scrape-side tooling — the scenario live runner, the
// round-trip tests — can consume /metrics without an external client
// library.
func ParseText(r io.Reader) ([]Family, error) {
	fams := make(map[string]*Family)
	var order []string
	getFam := func(name string) *Family {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &Family{Name: name, Kind: KindGauge}
		fams[name] = f
		order = append(order, name)
		return f
	}
	// Per-family accumulation of histogram series by label signature.
	type histAcc struct {
		labels  []string // label names (excluding le), first seen order
		values  map[string][]string
		buckets map[string]map[float64]uint64
		sums    map[string]float64
		counts  map[string]uint64
		order   []string
	}
	hists := make(map[string]*histAcc)
	getHist := func(name string) *histAcc {
		if h, ok := hists[name]; ok {
			return h
		}
		h := &histAcc{
			values:  make(map[string][]string),
			buckets: make(map[string]map[float64]uint64),
			sums:    make(map[string]float64),
			counts:  make(map[string]uint64),
		}
		hists[name] = h
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				f := getFam(fields[2])
				f.Kind = Kind(fields[3])
			} else if len(fields) >= 4 && fields[1] == "HELP" {
				getFam(fields[2]).Help = fields[3]
			}
			continue
		}
		// Strip an OpenMetrics-style exemplar suffix (` # {trace_id="…"} v`)
		// before parsing: the sample proper ends at the " # " separator. No
		// registered label value contains that sequence, so the cut is safe.
		if i := strings.Index(line, " # "); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		// Histogram component series route to their parent family.
		base, comp := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Kind == KindHistogram {
					base, comp = trimmed, suffix
				}
				break
			}
		}
		if comp != "" {
			h := getHist(base)
			var le float64
			kept := make([]string, 0, len(labels))
			keptVals := make([]string, 0, len(labels))
			for _, kv := range labels {
				if kv[0] == "le" {
					le, err = parseFloat(kv[1])
					if err != nil {
						return nil, fmt.Errorf("metrics: bad le %q: %w", kv[1], err)
					}
					continue
				}
				kept = append(kept, kv[0])
				keptVals = append(keptVals, kv[1])
			}
			if h.labels == nil {
				h.labels = kept
			}
			sig := strings.Join(keptVals, "\xff")
			if _, ok := h.values[sig]; !ok {
				h.values[sig] = keptVals
				h.buckets[sig] = make(map[float64]uint64)
				h.order = append(h.order, sig)
			}
			switch comp {
			case "_bucket":
				h.buckets[sig][le] = uint64(value)
			case "_sum":
				h.sums[sig] = value
			case "_count":
				h.counts[sig] = uint64(value)
			}
			continue
		}
		f := getFam(base)
		s := Sample{Value: value}
		for _, kv := range labels {
			s.LabelValues = append(s.LabelValues, kv[1])
		}
		if f.Labels == nil {
			for _, kv := range labels {
				f.Labels = append(f.Labels, kv[0])
			}
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Fuse histogram accumulators into their families.
	for name, h := range hists {
		f := getFam(name)
		f.Labels = h.labels
		for _, sig := range h.order {
			bounds := make([]float64, 0, len(h.buckets[sig]))
			for le := range h.buckets[sig] {
				bounds = append(bounds, le)
			}
			sort.Float64s(bounds)
			s := Sample{
				LabelValues: h.values[sig],
				Sum:         h.sums[sig],
				Count:       h.counts[sig],
			}
			finite := bounds
			if n := len(finite); n > 0 && math.IsInf(finite[n-1], 1) {
				finite = finite[:n-1]
			}
			if len(f.Buckets) == 0 {
				f.Buckets = finite
			}
			for _, le := range finite {
				s.BucketCounts = append(s.BucketCounts, h.buckets[sig][le])
			}
			// +Inf bucket: explicit when present, else the count.
			inf, ok := h.buckets[sig][infValue]
			if !ok {
				inf = s.Count
			}
			s.BucketCounts = append(s.BucketCounts, inf)
			f.Samples = append(f.Samples, s)
		}
	}

	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out, nil
}

// infValue is the parsed form of the exposition's "+Inf" bucket bound.
var infValue = math.Inf(1)

// parseFloat handles the exposition spellings of special values.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return infValue, nil
	case "-Inf":
		return -infValue, nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleLine splits `name{k="v",...} value` (labels optional) into its
// parts; label pairs keep file order.
func parseSampleLine(line string) (name string, labels [][2]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("metrics: unterminated labels in %q", line)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("metrics: malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	// rest may still hold "value [timestamp]".
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("metrics: missing value in %q", line)
	}
	value, err = parseFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("metrics: bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

func parseLabels(s string) ([][2]string, error) {
	var out [][2]string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("metrics: malformed label block %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("metrics: unquoted label value after %q", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("metrics: unterminated label value for %q", key)
		}
		out = append(out, [2]string{key, val.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// SelectFamily returns the named family from a gathered or parsed set.
func SelectFamily(fams []Family, name string) (Family, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// SelectSample returns the family's sample whose label values match the
// given name=value constraints (unconstrained labels match anything).
func SelectSample(f Family, want map[string]string) (Sample, bool) {
	for _, s := range f.Samples {
		ok := true
		for i, name := range f.Labels {
			if v, constrained := want[name]; constrained && (i >= len(s.LabelValues) || s.LabelValues[i] != v) {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram sample from
// its cumulative buckets, interpolating linearly within the matched bucket
// the way Prometheus's histogram_quantile does. Observations in the +Inf
// bucket clamp to the largest finite bound. The result is always a finite
// number: an empty or degenerate sample (no observations, no finite bounds,
// an out-of-range q, torn bucket counts from a mid-write scrape) returns 0
// rather than NaN, Inf, or a panic — scrape-side rule evaluation must never
// produce a poisoned value from a malformed exposition.
func Quantile(bounds []float64, s Sample, q float64) float64 {
	if s.Count == 0 || len(s.BucketCounts) == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, cum := range s.BucketCounts {
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			if len(bounds) == 0 {
				return 0
			}
			return finiteOrZero(bounds[len(bounds)-1])
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = bounds[i-1]
			below = s.BucketCounts[i-1]
		}
		width := bounds[i] - lo
		inBucket := float64(s.BucketCounts[i] - below)
		if inBucket <= 0 {
			return finiteOrZero(bounds[i])
		}
		return finiteOrZero(lo + width*(rank-float64(below))/inBucket)
	}
	// Count exceeds every cumulative bucket (including what should be the
	// +Inf bucket): a torn or malformed exposition. Clamp to the largest
	// bound on record instead of indexing past an empty slice.
	if len(bounds) == 0 {
		return 0
	}
	return finiteOrZero(bounds[len(bounds)-1])
}

// finiteOrZero collapses NaN/Inf — possible only from malformed parsed
// input — to the 0 sentinel Quantile promises.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// DeltaSample subtracts an earlier histogram (or counter) snapshot from a
// later one — the per-phase window between two scrapes. A counter reset
// between the snapshots (a server restart re-zeroes every atomic) shows up
// as the later snapshot being smaller than the earlier; every component of
// the delta then clamps to zero rather than going negative, so the reset
// costs one empty window instead of poisoning rate and ratio math
// downstream. Torn scrapes (individual counts moving backwards mid-write)
// clamp the same way.
func DeltaSample(end, start Sample) Sample {
	d := Sample{LabelValues: end.LabelValues}
	if end.Count >= start.Count {
		d.Count = end.Count - start.Count
	}
	if d.Sum = end.Sum - start.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	if d.Value = end.Value - start.Value; d.Value < 0 {
		d.Value = 0
	}
	d.BucketCounts = make([]uint64, len(end.BucketCounts))
	for i, c := range end.BucketCounts {
		var prev uint64
		if i < len(start.BucketCounts) {
			prev = start.BucketCounts[i]
		}
		if c >= prev {
			d.BucketCounts[i] = c - prev
		}
	}
	return d
}
