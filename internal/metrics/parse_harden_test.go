package metrics

// Scrape-hardening regressions: the monitor's rule engine evaluates
// Quantile and DeltaSample over parsed expositions from servers it does
// not control, across restarts and mid-write scrapes. These tests pin the
// two promises that keep rule math sane: Quantile never returns NaN/Inf
// and never panics on degenerate input, and DeltaSample never goes
// negative — a counter reset costs one empty window, nothing worse.

import (
	"math"
	"testing"
)

// TestQuantileDegenerate drives Quantile through every malformed shape a
// scrape can produce and requires a finite, panic-free answer.
func TestQuantileDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		s      Sample
		q      float64
		want   float64
	}{
		{name: "empty sample", bounds: []float64{1, 2}, s: Sample{}, q: 0.99, want: 0},
		{name: "no buckets", bounds: []float64{1, 2}, s: Sample{Count: 5}, q: 0.5, want: 0},
		{
			// A parsed family with only a +Inf bucket has no finite bounds
			// at all; the old code indexed bounds[-1] here.
			name:   "no finite bounds",
			bounds: nil,
			s:      Sample{Count: 7, BucketCounts: []uint64{7}},
			q:      0.99,
			want:   0,
		},
		{
			// Count torn ahead of every cumulative bucket (mid-write scrape):
			// the scan exhausts the buckets without matching the rank.
			name:   "count exceeds buckets",
			bounds: []float64{1, 2},
			s:      Sample{Count: 100, BucketCounts: []uint64{3, 5, 6}},
			q:      0.99,
			want:   2, // clamps to the largest bound
		},
		{
			name:   "count exceeds buckets with no bounds",
			bounds: nil,
			s:      Sample{Count: 100, BucketCounts: []uint64{3}},
			q:      0.99,
			want:   0,
		},
		{name: "q zero", bounds: []float64{1, 2}, s: Sample{Count: 4, BucketCounts: []uint64{2, 4, 4}}, q: 0, want: 0},
		{name: "q negative", bounds: []float64{1, 2}, s: Sample{Count: 4, BucketCounts: []uint64{2, 4, 4}}, q: -1, want: 0},
		{name: "q above one", bounds: []float64{1, 2}, s: Sample{Count: 4, BucketCounts: []uint64{2, 4, 4}}, q: 1.5, want: 0},
		{name: "q NaN", bounds: []float64{1, 2}, s: Sample{Count: 4, BucketCounts: []uint64{2, 4, 4}}, q: math.NaN(), want: 0},
		{
			// Sanity: a well-formed sample still interpolates.
			name:   "well formed",
			bounds: []float64{1, 2},
			s:      Sample{Count: 4, BucketCounts: []uint64{2, 4, 4}},
			q:      0.5,
			want:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Quantile(tc.bounds, tc.s, tc.q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Quantile = %v, want finite", got)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile = %v, want %v", got, tc.want)
			}
		})
	}
}

// requireNonNegative asserts no component of a delta went below zero.
func requireNonNegative(t *testing.T, d Sample) {
	t.Helper()
	if d.Sum < 0 || d.Value < 0 {
		t.Errorf("negative delta: sum=%v value=%v", d.Sum, d.Value)
	}
	// Count and BucketCounts are uint64: a subtraction bug shows up as a
	// wrapped giant, not a negative.
	if d.Count > 1<<62 {
		t.Errorf("count wrapped: %d", d.Count)
	}
	for i, c := range d.BucketCounts {
		if c > 1<<62 {
			t.Errorf("bucket[%d] wrapped: %d", i, c)
		}
	}
}

// TestDeltaSampleCounterReset pins the restart story: a server restart
// re-zeroes every atomic, so the "end" snapshot is smaller than "start"
// in every component, and the delta must clamp to an empty window.
func TestDeltaSampleCounterReset(t *testing.T) {
	cases := []struct {
		name       string
		end, start Sample
		wantCount  uint64
		wantSum    float64
		wantValue  float64
	}{
		{
			name:  "full reset across restart",
			start: Sample{Count: 400, Sum: 99.5, Value: 400, BucketCounts: []uint64{100, 300, 400}},
			end:   Sample{Count: 12, Sum: 1.5, Value: 12, BucketCounts: []uint64{4, 10, 12}},
		},
		{
			name:  "scalar counter reset",
			start: Sample{Value: 5000},
			end:   Sample{Value: 3},
		},
		{
			name:      "torn sum moves backwards",
			start:     Sample{Count: 10, Sum: 8, BucketCounts: []uint64{5, 10}},
			end:       Sample{Count: 12, Sum: 7.5, BucketCounts: []uint64{6, 12}},
			wantCount: 2,
			wantSum:   0,
		},
		{
			name:      "torn bucket moves backwards",
			start:     Sample{Count: 10, Sum: 8, BucketCounts: []uint64{5, 10}},
			end:       Sample{Count: 11, Sum: 9, BucketCounts: []uint64{4, 11}},
			wantCount: 1,
			wantSum:   1,
		},
		{
			name:      "normal monotonic window",
			start:     Sample{Count: 4, Sum: 3, Value: 4, BucketCounts: []uint64{2, 4}},
			end:       Sample{Count: 12, Sum: 10, Value: 12, BucketCounts: []uint64{5, 12}},
			wantCount: 8,
			wantSum:   7,
			wantValue: 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := DeltaSample(tc.end, tc.start)
			requireNonNegative(t, d)
			if d.Count != tc.wantCount {
				t.Errorf("count = %d, want %d", d.Count, tc.wantCount)
			}
			if math.Abs(d.Sum-tc.wantSum) > 1e-9 {
				t.Errorf("sum = %v, want %v", d.Sum, tc.wantSum)
			}
			if math.Abs(d.Value-tc.wantValue) > 1e-9 {
				t.Errorf("value = %v, want %v", d.Value, tc.wantValue)
			}
		})
	}
}
