package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, samples sorted by name
// then label values, histograms as cumulative _bucket series plus _sum and
// _count.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Samples {
			if fam.Kind == KindHistogram {
				writeHistogram(bw, fam, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", fam.Name, labelString(fam.Labels, s.LabelValues, "", ""), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, fam Family, s Sample) {
	exemplar := func(le float64) string {
		for _, e := range s.Exemplars {
			if e.BucketLE == le {
				return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(e.TraceID), formatValue(e.Value))
			}
		}
		return ""
	}
	for i, bound := range fam.Buckets {
		le := formatValue(bound)
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", fam.Name,
			labelString(fam.Labels, s.LabelValues, "le", le), s.BucketCounts[i], exemplar(bound))
	}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", fam.Name,
		labelString(fam.Labels, s.LabelValues, "le", "+Inf"), s.BucketCounts[len(s.BucketCounts)-1],
		exemplar(math.Inf(1)))
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.Name, labelString(fam.Labels, s.LabelValues, "", ""), formatValue(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.Name, labelString(fam.Labels, s.LabelValues, "", ""), s.Count)
}

// labelString renders a {k="v",...} label block, appending the extra pair
// (the histogram le) last; it returns "" when there are no pairs at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus does: shortest
// round-trippable form, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler serves the registry at any path in Prometheus text format — mount
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
