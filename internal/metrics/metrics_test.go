package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact exposition bytes: HELP/TYPE headers,
// name-sorted families, label-value-sorted samples, cumulative histogram
// buckets with +Inf, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("test_requests_total", "Requests served.", "op")
	c.With("get").Add(3)
	c.With("put").Inc()
	g := r.NewGauge("test_depth", "Queue depth.")
	g.Set(7)
	r.NewGaugeFunc("test_age_ms", "Age.", func() float64 { return 12.5 })
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_age_ms Age.
# TYPE test_age_ms gauge
test_age_ms 12.5
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 2
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.06
test_latency_seconds_count 4
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{op="get"} 3
test_requests_total{op="put"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionEscaping checks label values and help text escape
// backslashes, quotes, and newlines.
func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_esc", "line one\nline \\two", "path")
	v.With(`a"b\c` + "\nnext").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP test_esc line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_esc{path="a\"b\\c\nnext"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestExpositionLabelOrdering checks labels render in their declared
// order, not sorted, and samples sort by label values.
func TestExpositionLabelOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_pairs", "", "zeta", "alpha")
	v.With("2", "b").Inc()
	v.With("1", "a").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	first := strings.Index(out, `test_pairs{zeta="1",alpha="a"}`)
	second := strings.Index(out, `test_pairs{zeta="2",alpha="b"}`)
	if first < 0 || second < 0 || first > second {
		t.Errorf("label ordering wrong:\n%s", out)
	}
}

// TestHistogramCumulative checks bucket counts are cumulative and the +Inf
// bucket equals the count.
func TestHistogramCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 1.6, 2.5, 99} {
		h.Observe(v)
	}
	buckets, sum, count := h.snapshot()
	wantBuckets := []uint64{1, 3, 4, 5}
	for i, w := range wantBuckets {
		if buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], w)
		}
	}
	if count != 5 || buckets[len(buckets)-1] != count {
		t.Errorf("count %d, +Inf %d", count, buckets[len(buckets)-1])
	}
	if math.Abs(sum-105.1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
}

// TestBoundaryValuesLandInLeBucket pins le (less-or-equal) semantics: an
// observation equal to a bound counts in that bound's bucket.
func TestBoundaryValuesLandInLeBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)
	buckets, _, _ := h.snapshot()
	if buckets[0] != 1 {
		t.Errorf("observation at bound escaped its bucket: %v", buckets)
	}
}

// TestConcurrentHammer drives counters, gauges, and histograms from many
// goroutines (the -race half of the contract) and checks totals.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_hammer_total", "")
	g := r.NewGauge("test_hammer_gauge", "")
	h := r.NewHistogram("test_hammer_seconds", "", DefBuckets)
	vec := r.NewHistogramVec("test_hammer_vec_seconds", "", DefBuckets, "op")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := vec.With("get") // interning races against other workers
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				child.ObserveDuration(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b) // scrapes race against writes
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if vec.With("get").Count() != total {
		t.Errorf("vec histogram count = %d, want %d", vec.With("get").Count(), total)
	}
}

// TestParseRoundTrip writes a registry out and parses it back, checking
// families, samples, and histogram reconstruction survive.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_rt_total", "Round trip.", "op", "region")
	v.With("get", "frankfurt").Add(41)
	h := r.NewHistogramVec("test_rt_seconds", "RT latency.", []float64{0.1, 1}, "op")
	h.With("get").Observe(0.05)
	h.With("get").Observe(0.5)
	h.With("get").Observe(50)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	cf, ok := SelectFamily(fams, "test_rt_total")
	if !ok {
		t.Fatal("counter family missing")
	}
	s, ok := SelectSample(cf, map[string]string{"op": "get", "region": "frankfurt"})
	if !ok || s.Value != 41 {
		t.Fatalf("counter sample = %+v, ok=%v", s, ok)
	}
	hf, ok := SelectFamily(fams, "test_rt_seconds")
	if !ok || hf.Kind != KindHistogram {
		t.Fatalf("histogram family missing or wrong kind: %+v", hf)
	}
	hs, ok := SelectSample(hf, map[string]string{"op": "get"})
	if !ok {
		t.Fatal("histogram sample missing")
	}
	if hs.Count != 3 || len(hs.BucketCounts) != 3 {
		t.Fatalf("histogram sample = %+v", hs)
	}
	if hs.BucketCounts[0] != 1 || hs.BucketCounts[1] != 2 || hs.BucketCounts[2] != 3 {
		t.Errorf("buckets = %v", hs.BucketCounts)
	}
	if math.Abs(hs.Sum-50.55) > 1e-9 {
		t.Errorf("sum = %v", hs.Sum)
	}
}

// TestQuantile checks interpolation, the +Inf clamp, and the empty case.
func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	s := Sample{BucketCounts: []uint64{10, 20, 20, 22}, Count: 22}
	if q := Quantile(bounds, s, 0.5); math.Abs(q-1.1) > 1e-9 {
		t.Errorf("p50 = %v, want 1.1", q) // rank 11 → second bucket, 1/10 in
	}
	if q := Quantile(bounds, s, 0.25); math.Abs(q-0.55) > 1e-9 {
		t.Errorf("p25 = %v, want 0.55", q)
	}
	if q := Quantile(bounds, s, 1); q != 4 {
		t.Errorf("p100 = %v, want clamp to 4", q)
	}
	if q := Quantile(bounds, Sample{}, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestDeltaSample checks per-phase windows subtract cleanly and clamp.
func TestDeltaSample(t *testing.T) {
	end := Sample{BucketCounts: []uint64{5, 9, 12}, Sum: 10, Count: 12}
	start := Sample{BucketCounts: []uint64{2, 3, 4}, Sum: 3, Count: 4}
	d := DeltaSample(end, start)
	if d.Count != 8 || d.Sum != 7 {
		t.Errorf("delta = %+v", d)
	}
	for i, w := range []uint64{3, 6, 8} {
		if d.BucketCounts[i] != w {
			t.Errorf("delta bucket[%d] = %d, want %d", i, d.BucketCounts[i], w)
		}
	}
	clamped := DeltaSample(start, end)
	if clamped.Count != 0 || clamped.BucketCounts[0] != 0 {
		t.Errorf("clamp failed: %+v", clamped)
	}
}

// TestReRegistrationDedupes checks registering a family twice with the same
// shape returns the same children, and a conflicting shape panics.
func TestReRegistrationDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.NewHistogramVec("test_dup_seconds", "", []float64{1, 2}, "op")
	b := r.NewHistogramVec("test_dup_seconds", "", []float64{1, 2}, "op")
	a.With("get").Observe(0.5)
	if b.With("get").Count() != 1 {
		t.Error("re-registration did not share children")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.NewCounterVec("test_dup_seconds", "", "op")
}

// TestExponentialBuckets pins the generator.
func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.25, 2, 4)
	want := []float64{0.25, 0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}
