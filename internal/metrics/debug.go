package metrics

import (
	"net/http"
	"net/http/pprof"

	"github.com/agardist/agar/internal/trace"
)

// MountDebug wires one observability mux the way every server binary
// serves it on its -metrics-addr listener:
//
//	/metrics        the registry in Prometheus text format
//	/debug/traces   the flight recorder's retained slow/errored requests
//	/debug/health   the readiness evaluator (200 green / 503 red)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// and registers the process-level families (RegisterGoRuntime) on reg.
// rec may be nil for binaries without a flight recorder, and health nil
// for binaries without a readiness evaluator; those endpoints are simply
// absent then. Call once per (mux, registry) pair — the runtime families
// bind one owner per series and panic on re-registration.
func MountDebug(mux *http.ServeMux, reg *Registry, rec *trace.Recorder, health http.Handler) {
	mux.Handle("/metrics", reg.Handler())
	if rec != nil {
		mux.Handle("/debug/traces", rec.Handler())
	}
	if health != nil {
		mux.Handle("/debug/health", health)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	RegisterGoRuntime(reg)
}
