package metrics

// The metric-name catalog: every family the system registers, in one
// place. Registration sites use these constants, and the docs gate
// (TestDocsMetricsReference) requires each to be documented in
// docs/METRICS.md — the same idiom the WIRE.md gate uses for opcodes, so a
// new metric without documentation fails tier-1 tests.
const (
	// Framed-TCP servers (cache-server, backend-server) — labels
	// {server, region, op}; the two histograms split one op's life into
	// its shard-dispatch queue wait and its handler execution.
	NameServerOpQueueWait = "agar_server_op_queue_wait_seconds"
	NameServerOpExecute   = "agar_server_op_execute_seconds"
	NameServerQueueDepth  = "agar_server_dispatch_queue_depth"

	// Cache engine counters and gauges — function-backed over the cache's
	// own shard atomics; labels {server, region}.
	NameCacheGets             = "agar_cache_gets_total"
	NameCacheHits             = "agar_cache_hits_total"
	NameCacheSets             = "agar_cache_sets_total"
	NameCacheEvictions        = "agar_cache_evictions_total"
	NameCacheAdmissionRejects = "agar_cache_admission_rejects_total"
	NameCacheFullRejects      = "agar_cache_full_rejects_total"
	NameCacheUsedBytes        = "agar_cache_used_bytes"
	NameCacheCapacityBytes    = "agar_cache_capacity_bytes"
	NameCacheShards           = "agar_cache_shards"

	// Backend store servers — labels {server, region}.
	NameStoreChunks = "agar_store_chunks"
	NameStoreBytes  = "agar_store_bytes"

	// Cooperative mesh — labels {server, region}; the RTT histogram is
	// client-side, labelled {peer}.
	NameCoopPeerHits     = "agar_coop_peer_hits_total"
	NameCoopPeerMisses   = "agar_coop_peer_misses_total"
	NameCoopDigests      = "agar_coop_digests_total"
	NameCoopDigestsStale = "agar_coop_digests_stale_total"
	NameCoopDigestDeltas = "agar_coop_digest_deltas_total"
	NameCoopDigestAgeMS  = "agar_coop_digest_age_ms"
	NameCoopPeerRTTMS    = "agar_coop_peer_rtt_ms"

	// Blob-store adapters (store.WithMetrics) — labels {adapter, op}.
	NameBlobOpSeconds = "agar_blob_op_seconds"

	// Blob gateway HTTP surface (store.NewGatewayWith) — request counts
	// labelled {op, code} plus the instantaneous in-flight gauge.
	NameHTTPRequests = "agar_http_requests_total"
	NameHTTPInFlight = "agar_http_in_flight"

	// Client read path: the async cache-population pool's backpressure.
	NamePopulationQueueDepth = "agar_client_population_queue_depth"
	NamePopulationDropped    = "agar_client_population_dropped_total"

	// Versioned write path and cross-region coherence — cache-server
	// families labelled {server, region}, client families labelled
	// {region}. Version lag is the wall-clock age of the newest write
	// version a digest delivered; stale rejects count mutations refused by
	// a version floor; invalidations count keys whose cached chunks were
	// dropped because a digest raised their floor; stale drops count
	// cache/peer chunks the client discarded as below its read target; the
	// write histogram is the client-observed end-to-end versioned write.
	NameCoherenceVersionLagMS  = "agar_coherence_version_lag_ms"
	NameCoherenceInvalidations = "agar_coherence_invalidations_total"
	NameCoherenceStaleRejects  = "agar_coherence_stale_rejects_total"
	NameClientStaleDrops       = "agar_client_stale_chunk_drops_total"
	NameClientWriteSeconds     = "agar_client_write_seconds"

	// Process-level families every binary's debug mux exposes
	// (RegisterGoRuntime / MountDebug): a constant-1 build identity gauge
	// labelled {go_version, module}, and function-backed Go runtime health
	// read at gather time.
	NameBuildInfo        = "agar_build_info"
	NameGoGoroutines     = "agar_go_goroutines"
	NameGoHeapAllocBytes = "agar_go_heap_alloc_bytes"
	NameGoGCPauseSeconds = "agar_go_gc_pause_seconds_total"
)
