package metrics

import (
	"runtime"
	"runtime/debug"
)

// RegisterGoRuntime adds the process-level families to a registry: the
// agar_build_info identity gauge (constant 1, labelled with the Go
// toolchain version and main module path) plus function-backed Go runtime
// health — goroutine count, heap bytes in use, and cumulative GC pause
// time — all read at gather time, so an idle registry costs nothing.
//
// Call it at most once per registry: the families bind one owner per time
// series and a second registration panics, the same contract every other
// function-backed family in the system has. MountDebug calls it for you.
func RegisterGoRuntime(reg *Registry) {
	mod := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		mod = bi.Main.Path
	}
	reg.NewGaugeFuncVec(NameBuildInfo,
		"Constant 1, labelled with the Go toolchain and main module that built this process.",
		"go_version", "module").
		Bind(func() float64 { return 1 }, runtime.Version(), mod)
	reg.NewGaugeFunc(NameGoGoroutines,
		"Goroutines currently alive in this process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc(NameGoHeapAllocBytes,
		"Heap bytes allocated and still in use (runtime MemStats HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.NewCounterFunc(NameGoGCPauseSeconds,
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}
