package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestMux mounts the debug surface without a trace recorder.
func newTestMux(t *testing.T, r *Registry) *http.ServeMux {
	t.Helper()
	mux := http.NewServeMux()
	MountDebug(mux, r, nil, nil)
	return mux
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestHistogramExemplar pins the exemplar surface: the exemplar lands on
// the bucket its value falls in, later observations into the same bucket
// replace it (last writer wins), the overflow bucket keeps its own, and
// an empty trace ID never records one.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_exemplar_seconds", "", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaaaaaaaaaaaaaa")
	h.ObserveExemplar(0.5, "bbbbbbbbbbbbbbbb")
	h.ObserveExemplar(0.6, "cccccccccccccccc") // replaces b in the same bucket
	h.ObserveExemplar(5, "dddddddddddddddd")   // +Inf overflow bucket
	h.ObserveExemplar(0.07, "")                // counted, no exemplar

	fams := r.Gather()
	fam, ok := SelectFamily(fams, "test_exemplar_seconds")
	if !ok || len(fam.Samples) != 1 {
		t.Fatalf("family missing: %+v", fams)
	}
	s := fam.Samples[0]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := map[float64]struct {
		trace string
		value float64
	}{
		0.1: {"aaaaaaaaaaaaaaaa", 0.05},
		1:   {"cccccccccccccccc", 0.6},
	}
	var sawInf bool
	for _, ex := range s.Exemplars {
		if ex.BucketLE > 1e308 { // +Inf stamped by snapshotExemplars
			sawInf = true
			if ex.TraceID != "dddddddddddddddd" || ex.Value != 5 {
				t.Fatalf("+Inf exemplar = %+v", ex)
			}
			continue
		}
		w, ok := want[ex.BucketLE]
		if !ok {
			t.Fatalf("unexpected exemplar bucket %v", ex.BucketLE)
		}
		if ex.TraceID != w.trace || ex.Value != w.value {
			t.Fatalf("bucket %v exemplar = %+v, want %+v", ex.BucketLE, ex, w)
		}
		delete(want, ex.BucketLE)
	}
	if len(want) != 0 || !sawInf {
		t.Fatalf("exemplars missing: leftover %v, inf=%v (got %+v)", want, sawInf, s.Exemplars)
	}
}

// TestExemplarExpositionRoundTrip checks the text format end to end: the
// _bucket lines carry OpenMetrics-style " # {trace_id=...}" suffixes, and
// the package's own parser — which external tooling shares — still reads
// every value correctly with the suffixes present.
func TestExemplarExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("test_exemplar_seconds", "", []float64{0.1, 1}, "op")
	h.With("get").ObserveExemplar(0.5, "feedfacecafebeef")
	h.With("get").Observe(0.01)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `le="1"} 2 # {trace_id="feedfacecafebeef"} 0.5`) {
		t.Fatalf("exposition missing exemplar suffix:\n%s", text)
	}

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse with exemplars: %v", err)
	}
	fam, ok := SelectFamily(fams, "test_exemplar_seconds")
	if !ok {
		t.Fatal("family lost in round trip")
	}
	s, ok := SelectSample(fam, map[string]string{"op": "get"})
	if !ok || s.Count != 2 {
		t.Fatalf("sample = %+v ok=%v, want count 2", s, ok)
	}
	// Bucket counts must survive the suffix strip: 0.01 in bucket 0, both
	// in bucket 1.
	if s.BucketCounts[0] != 1 || s.BucketCounts[1] != 2 {
		t.Fatalf("bucket counts = %v", s.BucketCounts)
	}
}

// TestMountDebugSurface mounts the shared debug mux and checks each route
// answers: /metrics with the build-info and runtime families, /debug/pprof
// with an index, and /debug/traces absent when no recorder is given.
func TestMountDebugSurface(t *testing.T) {
	r := NewRegistry()
	mux := newTestMux(t, r)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body := get(t, ts.URL+"/metrics")
	for _, name := range []string{NameBuildInfo, NameGoGoroutines, NameGoHeapAllocBytes, NameGoGCPauseSeconds} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if idx := get(t, ts.URL+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index lacks goroutine profile:\n%.200s", idx)
	}
	resp, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/debug/traces without a recorder = %d, want 404", resp.StatusCode)
	}
}
