// Package metrics is the dependency-free instrumentation registry every
// server in the system reports through: counters, gauges (static and
// function-backed), and fixed-bucket histograms, exposed in Prometheus
// text format by Handler.
//
// The hot path is lock-free: counters and histograms are atomics, and
// labelled metrics hand out pre-interned children (With) at construction
// time, so recording an observation never allocates and never takes the
// registry lock. The registry lock is only held while registering families,
// interning children, and gathering a scrape.
//
// One Registry backs both observability surfaces: the Prometheus /metrics
// endpoint and the wire-level stats op both read the same registered
// children, so the two can never disagree. The package also includes a
// parser for its own exposition format (ParseText) plus histogram quantile
// and delta helpers, so scrape-side tooling — the scenario live runner, the
// golden tests — needs no external client library.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's exposition type.
type Kind string

// Family kinds, matching the Prometheus text-format TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// roughly ×2.5 per step — wide enough for a localhost round trip and a
// scaled WAN fetch to land in different buckets.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// multiplying by factor — the usual way to cover several decades of
// latency with few buckets.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n panics — counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observations are lock-free:
// one atomic add on the matched bucket, one on the count, and a CAS loop
// folding the value into the float sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
	// exemplars holds, per bucket, the trace ID of the last observation
	// that landed there with a trace attached — the jump from "this bucket
	// has a tail" to "here is one concrete slow request to look up".
	exemplars []atomic.Pointer[Exemplar]
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not ascending: %v", bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Exemplar ties one histogram bucket to a concrete traced request: the
// trace ID the observation carried and the observed value. BucketLE is the
// bucket's upper bound (+Inf for the overflow bucket) when gathered.
type Exemplar struct {
	BucketLE float64
	TraceID  string
	Value    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v (le semantics); beyond the
	// last bound lands in the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and, when traceID is non-empty, pins
// it as the matched bucket's exemplar — last writer wins, one atomic store
// over Observe's cost, still lock-free.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// ObserveDurationExemplar records a duration in seconds with a trace-ID
// exemplar (empty traceID degrades to a plain observation).
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (last entry is +Inf == total),
// the sum, and the count, reading each atomic once. The three are not one
// consistent cut under concurrent observation — fine for monitoring, and
// cumulative counts are re-monotonised so a torn read never yields a
// decreasing bucket sequence.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	buckets := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		buckets[i] = cum
	}
	count := h.count.Load()
	if count < cum {
		count = cum
	}
	buckets[len(buckets)-1] = count
	return buckets, h.Sum(), count
}

// snapshotExemplars copies the non-empty bucket exemplars, stamping each
// with its bucket's upper bound (+Inf for the overflow bucket).
func (h *Histogram) snapshotExemplars() []Exemplar {
	var out []Exemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out = append(out, Exemplar{BucketLE: le, TraceID: e.TraceID, Value: e.Value})
	}
	return out
}

// child is one labelled instance inside a family: exactly one of the
// concrete metric pointers (or the value function) is set.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

func (c *child) value() float64 {
	switch {
	case c.fn != nil:
		return c.fn()
	case c.counter != nil:
		return float64(c.counter.Value())
	case c.gauge != nil:
		return float64(c.gauge.Value())
	}
	return 0
}

// family is one registered metric name: its type, help, label schema, and
// interned children.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []*child
}

func (f *family) intern(values []string, make func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	c.values = append([]string(nil), values...)
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Registry holds metric families and serves them in exposition format.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the named family, creating it on first registration and
// panicking if a re-registration disagrees on kind, labels, or buckets —
// that is a programming error, not runtime input.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// CounterVec is a counter family with labels; With interns children.
type CounterVec struct{ f *family }

// NewCounterVec registers (or returns) a counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, KindCounter, labels, nil)}
}

// With returns the child for the given label values, interning it on first
// use. Call at construction time and keep the pointer: the returned Counter
// is lock-free.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.intern(values, func() *child { return &child{counter: &Counter{}} }).counter
}

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help).With()
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or returns) a gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, KindGauge, labels, nil)}
}

// With returns the interned child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.intern(values, func() *child { return &child{gauge: &Gauge{}} }).gauge
}

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeVec(name, help).With()
}

// FuncVec is a family of function-backed values (gauge or counter kind):
// the function is called at gather time, so existing atomics can be exposed
// without shadow state.
type FuncVec struct{ f *family }

// NewGaugeFuncVec registers a labelled function-backed gauge family.
func (r *Registry) NewGaugeFuncVec(name, help string, labels ...string) *FuncVec {
	return &FuncVec{r.lookup(name, help, KindGauge, labels, nil)}
}

// NewCounterFuncVec registers a labelled function-backed counter family —
// for monotonic totals that already live in someone else's atomics.
func (r *Registry) NewCounterFuncVec(name, help string, labels ...string) *FuncVec {
	return &FuncVec{r.lookup(name, help, KindCounter, labels, nil)}
}

// Bind attaches the value function for one label combination. Binding the
// same combination twice panics — one owner per time series.
func (v *FuncVec) Bind(fn func() float64, values ...string) {
	created := false
	v.f.intern(values, func() *child { created = true; return &child{fn: fn} })
	if !created {
		panic(fmt.Sprintf("metrics: duplicate Bind of %s%v", v.f.name, values))
	}
}

// NewGaugeFunc registers an unlabelled function-backed gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.NewGaugeFuncVec(name, help).Bind(fn)
}

// NewCounterFunc registers an unlabelled function-backed counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.NewCounterFuncVec(name, help).Bind(fn)
}

// HistogramVec is a histogram family with labels and shared buckets.
type HistogramVec struct{ f *family }

// NewHistogramVec registers (or returns) a histogram family. Nil or empty
// buckets use DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{r.lookup(name, help, KindHistogram, labels, buckets)}
}

// With returns the interned child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.intern(values, func() *child { return &child{hist: newHistogram(f.buckets)} }).hist
}

// NewHistogram registers an unlabelled histogram.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.NewHistogramVec(name, help, buckets).With()
}

// Family is a gathered snapshot of one metric family.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Labels  []string
	Buckets []float64 // histogram upper bounds (+Inf implicit)
	Samples []Sample
}

// Sample is one gathered time series.
type Sample struct {
	// LabelValues aligns with the family's Labels.
	LabelValues []string
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// BucketCounts are cumulative counts per bucket; the last entry is the
	// +Inf bucket and equals Count. Histograms only.
	BucketCounts []uint64
	// Sum and Count are the histogram's running sum and observation count.
	Sum   float64
	Count uint64
	// Exemplars are the histogram's per-bucket trace-ID exemplars (only
	// buckets that have seen a traced observation appear).
	Exemplars []Exemplar
}

// Gather snapshots every family, sorted by name with samples sorted by
// label values — the stable order the exposition format and golden tests
// rely on.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		children := append([]*child(nil), f.order...)
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return lessStrings(children[i].values, children[j].values)
		})
		fam := Family{
			Name: f.name, Help: f.help, Kind: f.kind,
			Labels:  append([]string(nil), f.labels...),
			Buckets: append([]float64(nil), f.buckets...),
		}
		for _, c := range children {
			s := Sample{LabelValues: append([]string(nil), c.values...)}
			if c.hist != nil {
				s.BucketCounts, s.Sum, s.Count = c.hist.snapshot()
				s.Exemplars = c.hist.snapshotExemplars()
			} else {
				s.Value = c.value()
			}
			fam.Samples = append(fam.Samples, s)
		}
		out = append(out, fam)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
