// Package backend implements the persistent chunk store that stands in for
// the paper's per-region Amazon S3 buckets.
//
// A Store is one region's bucket view: a durable, concurrency-safe mapping
// from (object key, chunk index) to chunk bytes, with region-level failure
// injection. Since PR 4 the actual persistence is pluggable: every Store
// delegates to a store.BlobStore adapter (in-memory by default — the exact
// original semantics — or the disk / remote-gateway adapters), using the
// region name as its bucket. A Cluster groups one Store per region and
// knows how to spread an object's erasure-coded chunks across them under a
// placement policy, exactly like the deployment in the paper's Figure 1.
package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/store"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("backend: chunk not found")
	ErrDown     = errors.New("backend: region is down")
)

// ChunkID identifies one stored chunk.
type ChunkID struct {
	Key   string
	Index int
}

// blobID converts to the blob layer's chunk address.
func (id ChunkID) blobID() store.ChunkID { return store.ChunkID{Key: id.Key, Index: id.Index} }

// Store is a single region's chunk bucket. It is safe for concurrent use.
// The zero value is not usable; construct with NewStore or NewStoreOn.
type Store struct {
	region geo.RegionID
	bucket string
	blob   store.BlobStore

	mu   sync.RWMutex
	down bool

	// Versioned write path (versioned.go): lazily-built mirror of the
	// bucket's persisted per-key version records.
	verOnce  sync.Once
	verCache *versionCache
}

// NewStore returns an empty in-memory bucket for the region — the default
// adapter, with the semantics the backend always had.
func NewStore(region geo.RegionID) *Store {
	return NewStoreOn(region, store.NewMem())
}

// NewStoreOn returns the region's bucket view over an explicit blob-store
// adapter, using the region name as the bucket. Several regions may share
// one adapter (one disk root, one gateway): their buckets stay disjoint.
func NewStoreOn(region geo.RegionID, blob store.BlobStore) *Store {
	return &Store{region: region, bucket: region.String(), blob: blob}
}

// Region returns the region this bucket lives in.
func (s *Store) Region() geo.RegionID { return s.region }

// Blob exposes the underlying adapter (for tests and tools).
func (s *Store) Blob() store.BlobStore { return s.blob }

// isDown reports the injected-failure flag.
func (s *Store) isDown() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// Put stores a copy of the chunk bytes.
func (s *Store) Put(id ChunkID, data []byte) error {
	if s.isDown() {
		return ErrDown
	}
	return s.blob.PutChunk(context.Background(), s.bucket, id.blobID(), data)
}

// Get returns a copy of the chunk bytes, ErrNotFound when absent, or
// ErrDown while the region is failed.
func (s *Store) Get(id ChunkID) ([]byte, error) {
	if s.isDown() {
		return nil, ErrDown
	}
	data, err := s.blob.GetChunk(context.Background(), s.bucket, id.blobID())
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNotFound
	}
	return data, err
}

// GetMulti fetches several chunks of one key in a single adapter round trip
// and returns whichever exist, keyed by index — the batched form of Get
// that keeps a remote blob tier to one HTTP exchange.
func (s *Store) GetMulti(key string, indices []int) (map[int][]byte, error) {
	if s.isDown() {
		return nil, ErrDown
	}
	return s.blob.GetChunks(context.Background(), s.bucket, key, indices)
}

// Delete removes a chunk and reports whether it was present. Deletes are
// an operator action, not a data-path read, so the down flag does not gate
// them — matching the original in-memory semantics. An adapter failure
// reads as "absent"; callers that must distinguish (the live store
// server's delete op) use DeleteChecked.
func (s *Store) Delete(id ChunkID) bool {
	ok, _ := s.DeleteChecked(id)
	return ok
}

// DeleteChecked removes a chunk, reporting both whether it was present and
// any adapter error — so a remote tier's transient failure is not silently
// mistaken for a no-op that leaves an orphan chunk behind.
func (s *Store) DeleteChecked(id ChunkID) (bool, error) {
	return s.blob.DeleteChunk(context.Background(), s.bucket, id.blobID())
}

// Len returns the number of stored chunks (0 when the adapter errors; use
// StatsChecked to distinguish).
func (s *Store) Len() int {
	st, _ := s.StatsChecked()
	return int(st.Chunks)
}

// Bytes returns the total stored bytes (0 when the adapter errors; use
// StatsChecked to distinguish).
func (s *Store) Bytes() int64 {
	st, _ := s.StatsChecked()
	return st.Bytes
}

// StatsChecked returns the bucket's chunk/byte accounting or the adapter
// error, so a gateway blip is not reported as an empty region.
func (s *Store) StatsChecked() (store.Stats, error) {
	return s.blob.Stats(context.Background(), s.bucket)
}

// Keys returns the sorted distinct object keys with at least one chunk here.
func (s *Store) Keys() []string {
	keys, err := s.blob.List(context.Background(), s.bucket)
	if err != nil {
		return nil
	}
	return keys
}

// SetDown marks the region failed (true) or healthy (false). While down,
// every Get and Put fails with ErrDown — the failure-injection hook for
// degraded-read tests. The flag lives above the blob adapter, so a "down"
// region's durable chunks survive for its recovery.
func (s *Store) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports whether the region is failed.
func (s *Store) Down() bool { return s.isDown() }

// Cluster is the multi-region backend: one Store per region plus the codec
// and placement that map objects onto chunks onto regions.
type Cluster struct {
	codec     *erasure.Codec
	placement geo.Placement
	stores    map[geo.RegionID]*Store
	regions   []geo.RegionID
}

// NewCluster builds a cluster with one empty in-memory store per region.
func NewCluster(regions []geo.RegionID, codec *erasure.Codec, placement geo.Placement) *Cluster {
	return NewClusterOn(regions, codec, placement, store.NewMem())
}

// NewClusterOn builds a cluster whose regions persist chunks in the given
// blob store, one bucket per region — the seam that swaps the whole backend
// tier between in-memory, on-disk and remote-gateway deployments.
func NewClusterOn(regions []geo.RegionID, codec *erasure.Codec, placement geo.Placement, blob store.BlobStore) *Cluster {
	if len(regions) == 0 {
		panic("backend: cluster needs at least one region")
	}
	stores := make(map[geo.RegionID]*Store, len(regions))
	for _, r := range regions {
		stores[r] = NewStoreOn(r, blob)
	}
	cp := make([]geo.RegionID, len(regions))
	copy(cp, regions)
	return &Cluster{codec: codec, placement: placement, stores: stores, regions: cp}
}

// Codec returns the cluster's erasure codec.
func (c *Cluster) Codec() *erasure.Codec { return c.codec }

// Placement returns the cluster's chunk placement policy.
func (c *Cluster) Placement() geo.Placement { return c.placement }

// Regions returns the cluster's regions in construction order.
func (c *Cluster) Regions() []geo.RegionID {
	out := make([]geo.RegionID, len(c.regions))
	copy(out, c.regions)
	return out
}

// Store returns the bucket for a region, or nil if the region is unknown.
func (c *Cluster) Store(r geo.RegionID) *Store { return c.stores[r] }

// PutObject encodes the object and writes each chunk to its placed region.
func (c *Cluster) PutObject(key string, data []byte) error {
	chunks, err := c.codec.Split(data)
	if err != nil {
		return fmt.Errorf("backend: encode %q: %w", key, err)
	}
	locs := c.placement.Locate(key, len(chunks))
	for i, chunk := range chunks {
		st := c.stores[locs[i]]
		if st == nil {
			return fmt.Errorf("backend: placement names unknown region %v", locs[i])
		}
		if err := st.Put(ChunkID{Key: key, Index: i}, chunk); err != nil {
			return fmt.Errorf("backend: store chunk %d of %q in %v: %w", i, key, locs[i], err)
		}
	}
	return nil
}

// GetChunk reads one chunk from the region that the placement assigns it.
func (c *Cluster) GetChunk(key string, index int) ([]byte, error) {
	locs := c.placement.Locate(key, c.codec.Total())
	if index < 0 || index >= len(locs) {
		return nil, fmt.Errorf("backend: chunk index %d out of range", index)
	}
	return c.stores[locs[index]].Get(ChunkID{Key: key, Index: index})
}

// GetObject fetches the k nearest available chunks (any k, preferring data
// chunks) and decodes the object. It is a convenience for tests and tools;
// the latency-aware read path lives in the client package.
func (c *Cluster) GetObject(key string) ([]byte, error) {
	total := c.codec.Total()
	chunks := make([][]byte, total)
	got := 0
	var firstErr error
	for i := 0; i < total && got < c.codec.K(); i++ {
		data, err := c.GetChunk(key, i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		chunks[i] = data
		got++
	}
	if got < c.codec.K() {
		return nil, fmt.Errorf("backend: only %d of %d chunks of %q available: %w",
			got, c.codec.K(), key, firstErr)
	}
	return c.codec.Decode(chunks)
}

// TotalBytes returns the bytes stored across all regions (the paper's
// "400 MB including redundancy" figure for its 300-object working set).
func (c *Cluster) TotalBytes() int64 {
	var n int64
	for _, s := range c.stores {
		n += s.Bytes()
	}
	return n
}
