// Package backend implements the persistent chunk store that stands in for
// the paper's per-region Amazon S3 buckets.
//
// A Store is one region's bucket: a durable (for the process lifetime),
// concurrency-safe map from (object key, chunk index) to chunk bytes. A
// Cluster groups one Store per region and knows how to spread an object's
// erasure-coded chunks across them under a placement policy, exactly like
// the deployment in the paper's Figure 1.
package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("backend: chunk not found")
	ErrDown     = errors.New("backend: region is down")
)

// ChunkID identifies one stored chunk.
type ChunkID struct {
	Key   string
	Index int
}

// Store is a single region's chunk bucket. It is safe for concurrent use.
// The zero value is not usable; construct with NewStore.
type Store struct {
	mu     sync.RWMutex
	region geo.RegionID
	chunks map[ChunkID][]byte
	down   bool
}

// NewStore returns an empty bucket for the region.
func NewStore(region geo.RegionID) *Store {
	return &Store{region: region, chunks: make(map[ChunkID][]byte)}
}

// Region returns the region this bucket lives in.
func (s *Store) Region() geo.RegionID { return s.region }

// Put stores a copy of the chunk bytes.
func (s *Store) Put(id ChunkID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrDown
	}
	s.chunks[id] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the chunk bytes, ErrNotFound when absent, or
// ErrDown while the region is failed.
func (s *Store) Get(id ChunkID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, ErrDown
	}
	data, ok := s.chunks[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// Delete removes a chunk and reports whether it was present.
func (s *Store) Delete(id ChunkID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[id]; !ok {
		return false
	}
	delete(s.chunks, id)
	return true
}

// Len returns the number of stored chunks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Bytes returns the total stored bytes.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.chunks {
		n += int64(len(c))
	}
	return n
}

// Keys returns the sorted distinct object keys with at least one chunk here.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for id := range s.chunks {
		seen[id.Key] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetDown marks the region failed (true) or healthy (false). While down,
// every Get and Put fails with ErrDown — the failure-injection hook for
// degraded-read tests.
func (s *Store) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports whether the region is failed.
func (s *Store) Down() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// Cluster is the multi-region backend: one Store per region plus the codec
// and placement that map objects onto chunks onto regions.
type Cluster struct {
	codec     *erasure.Codec
	placement geo.Placement
	stores    map[geo.RegionID]*Store
	regions   []geo.RegionID
}

// NewCluster builds a cluster with one empty store per region.
func NewCluster(regions []geo.RegionID, codec *erasure.Codec, placement geo.Placement) *Cluster {
	if len(regions) == 0 {
		panic("backend: cluster needs at least one region")
	}
	stores := make(map[geo.RegionID]*Store, len(regions))
	for _, r := range regions {
		stores[r] = NewStore(r)
	}
	cp := make([]geo.RegionID, len(regions))
	copy(cp, regions)
	return &Cluster{codec: codec, placement: placement, stores: stores, regions: cp}
}

// Codec returns the cluster's erasure codec.
func (c *Cluster) Codec() *erasure.Codec { return c.codec }

// Placement returns the cluster's chunk placement policy.
func (c *Cluster) Placement() geo.Placement { return c.placement }

// Regions returns the cluster's regions in construction order.
func (c *Cluster) Regions() []geo.RegionID {
	out := make([]geo.RegionID, len(c.regions))
	copy(out, c.regions)
	return out
}

// Store returns the bucket for a region, or nil if the region is unknown.
func (c *Cluster) Store(r geo.RegionID) *Store { return c.stores[r] }

// PutObject encodes the object and writes each chunk to its placed region.
func (c *Cluster) PutObject(key string, data []byte) error {
	chunks, err := c.codec.Split(data)
	if err != nil {
		return fmt.Errorf("backend: encode %q: %w", key, err)
	}
	locs := c.placement.Locate(key, len(chunks))
	for i, chunk := range chunks {
		st := c.stores[locs[i]]
		if st == nil {
			return fmt.Errorf("backend: placement names unknown region %v", locs[i])
		}
		if err := st.Put(ChunkID{Key: key, Index: i}, chunk); err != nil {
			return fmt.Errorf("backend: store chunk %d of %q in %v: %w", i, key, locs[i], err)
		}
	}
	return nil
}

// GetChunk reads one chunk from the region that the placement assigns it.
func (c *Cluster) GetChunk(key string, index int) ([]byte, error) {
	locs := c.placement.Locate(key, c.codec.Total())
	if index < 0 || index >= len(locs) {
		return nil, fmt.Errorf("backend: chunk index %d out of range", index)
	}
	return c.stores[locs[index]].Get(ChunkID{Key: key, Index: index})
}

// GetObject fetches the k nearest available chunks (any k, preferring data
// chunks) and decodes the object. It is a convenience for tests and tools;
// the latency-aware read path lives in the client package.
func (c *Cluster) GetObject(key string) ([]byte, error) {
	total := c.codec.Total()
	chunks := make([][]byte, total)
	got := 0
	var firstErr error
	for i := 0; i < total && got < c.codec.K(); i++ {
		data, err := c.GetChunk(key, i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		chunks[i] = data
		got++
	}
	if got < c.codec.K() {
		return nil, fmt.Errorf("backend: only %d of %d chunks of %q available: %w",
			got, c.codec.K(), key, firstErr)
	}
	return c.codec.Decode(chunks)
}

// TotalBytes returns the bytes stored across all regions (the paper's
// "400 MB including redundancy" figure for its 300-object working set).
func (c *Cluster) TotalBytes() int64 {
	var n int64
	for _, s := range c.stores {
		n += s.Bytes()
	}
	return n
}
