// Versioned write path: the backend.Store half of the hybrid-logical-clock
// coherence design (docs/WRITES.md).
//
// A versioned chunk is stored with its version prefixed to the payload
// (8 bytes, big endian), and every versioned key carries a persisted
// version record at store.VersionIndex in the same bucket. Reads consult
// the record to know whether a key's chunks are framed; writes enforce
// last-writer-wins against it — a put or delete older than the record is
// refused with a StaleError instead of clobbering newer data. The record
// is written after the chunks it describes, so a reported version is never
// newer than the data a concurrent reader fetched (reads check the record
// first; see docs/WRITES.md for the torn-window analysis).
//
// The in-memory record cache assumes one Store instance owns its bucket's
// write traffic — the live deployment's one-store-server-per-region shape.
// A fresh Store over the same bucket (a restart, a crash rescan) lazily
// reloads the records and observes exactly the persisted floors.
package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/store"
)

// StaleError reports a versioned mutation that lost to a newer version;
// Cur is the version it lost to. errors.Is(err, ErrStale) matches it.
type StaleError struct {
	Cur uint64
}

// ErrStale is the errors.Is target for StaleError.
var ErrStale = errors.New("backend: version is stale")

func (e *StaleError) Error() string {
	return fmt.Sprintf("backend: stale write (current version %d)", e.Cur)
}

// Is makes errors.Is(err, ErrStale) match.
func (e *StaleError) Is(target error) bool { return target == ErrStale }

// versionFramedLen is the per-chunk version prefix length.
const versionFramedLen = 8

// frameVersioned prefixes the chunk payload with its version.
func frameVersioned(data []byte, ver uint64) []byte {
	out := make([]byte, versionFramedLen+len(data))
	for i := 0; i < versionFramedLen; i++ {
		out[i] = byte(ver >> (8 * (versionFramedLen - 1 - i)))
	}
	copy(out[versionFramedLen:], data)
	return out
}

// unframeVersioned splits a version-framed chunk. Chunks shorter than the
// prefix read as unversioned raw bytes — the transitional form while a
// key's first versioned write is in flight.
func unframeVersioned(raw []byte) ([]byte, uint64) {
	if len(raw) < versionFramedLen {
		return raw, 0
	}
	var ver uint64
	for i := 0; i < versionFramedLen; i++ {
		ver = ver<<8 | uint64(raw[i])
	}
	return raw[versionFramedLen:], ver
}

// versionCache lazily mirrors the bucket's persisted version records.
// Values include zero ("no record"), so unversioned keys cost one blob
// read ever, not one per read.
type versionCache struct {
	mu   sync.Mutex
	vers map[string]uint64
}

// ensureVersions initialises the cache on first use.
func (s *Store) ensureVersions() *versionCache {
	s.verOnce.Do(func() { s.verCache = &versionCache{vers: make(map[string]uint64)} })
	return s.verCache
}

// VersionOf returns the key's version floor in this bucket: the persisted
// record, through the in-memory cache. Zero means the key has never been
// written through the versioned path here.
func (s *Store) VersionOf(key string) (uint64, error) {
	vc := s.ensureVersions()
	vc.mu.Lock()
	ver, ok := vc.vers[key]
	vc.mu.Unlock()
	if ok {
		return ver, nil
	}
	ver, err := store.GetVersion(context.Background(), s.blob, s.bucket, key)
	if err != nil {
		return 0, err
	}
	vc.mu.Lock()
	if cached, ok := vc.vers[key]; ok && cached > ver {
		ver = cached // a concurrent write raced the load
	} else {
		vc.vers[key] = ver
	}
	vc.mu.Unlock()
	return ver, nil
}

// raiseVersion persists the record and raises the cache when ver is newer
// than the current floor.
func (s *Store) raiseVersion(key string, ver uint64) error {
	cur, err := s.VersionOf(key)
	if err != nil {
		return err
	}
	if ver <= cur {
		return nil
	}
	if err := store.PutVersion(context.Background(), s.blob, s.bucket, key, ver); err != nil {
		return err
	}
	vc := s.ensureVersions()
	vc.mu.Lock()
	if vc.vers[key] < ver {
		vc.vers[key] = ver
	}
	vc.mu.Unlock()
	return nil
}

// PutVer stores a chunk at the given write version. Version zero is the
// legacy path (identical to Put). A version older than the key's floor is
// refused with a StaleError — last writer wins, the HLC conflict rule.
func (s *Store) PutVer(id ChunkID, data []byte, ver uint64) error {
	if ver == 0 {
		return s.Put(id, data)
	}
	if s.isDown() {
		return ErrDown
	}
	cur, err := s.VersionOf(id.Key)
	if err != nil {
		return err
	}
	if ver < cur {
		return &StaleError{Cur: cur}
	}
	if err := s.blob.PutChunk(context.Background(), s.bucket, id.blobID(), frameVersioned(data, ver)); err != nil {
		return err
	}
	return s.raiseVersion(id.Key, ver)
}

// PutMultiVer stores several chunks of one key at one write version,
// then raises the key's persisted record once — chunks first, record
// second, so a concurrent reader never sees a version newer than the data
// it read.
func (s *Store) PutMultiVer(key string, chunks map[int][]byte, ver uint64) error {
	if ver == 0 {
		for idx, data := range chunks {
			if err := s.Put(ChunkID{Key: key, Index: idx}, data); err != nil {
				return err
			}
		}
		return nil
	}
	if s.isDown() {
		return ErrDown
	}
	cur, err := s.VersionOf(key)
	if err != nil {
		return err
	}
	if ver < cur {
		return &StaleError{Cur: cur}
	}
	for idx, data := range chunks {
		id := ChunkID{Key: key, Index: idx}
		if err := s.blob.PutChunk(context.Background(), s.bucket, id.blobID(), frameVersioned(data, ver)); err != nil {
			return err
		}
	}
	return s.raiseVersion(key, ver)
}

// GetVer returns a chunk's bytes and the version it was written at (zero
// for keys outside the versioned path).
func (s *Store) GetVer(id ChunkID) ([]byte, uint64, error) {
	floor, err := s.VersionOf(id.Key)
	if err != nil {
		return nil, 0, err
	}
	data, err := s.Get(id)
	if err != nil {
		return nil, 0, err
	}
	if floor == 0 {
		return data, 0, nil
	}
	payload, ver := unframeVersioned(data)
	return payload, ver, nil
}

// GetMultiVer is the batched GetVer: it reads the key's version floor
// first (so the reported floor is never newer than the chunk data that
// follows), then fetches whichever requested chunks exist. It returns the
// chunks keyed by index, their per-chunk versions (nil when the key is
// unversioned), and the floor.
func (s *Store) GetMultiVer(key string, indices []int) (map[int][]byte, map[int]uint64, uint64, error) {
	floor, err := s.VersionOf(key)
	if err != nil {
		return nil, nil, 0, err
	}
	chunks, err := s.GetMulti(key, indices)
	if err != nil {
		return nil, nil, 0, err
	}
	if floor == 0 {
		return chunks, nil, 0, nil
	}
	vers := make(map[int]uint64, len(chunks))
	for idx, raw := range chunks {
		payload, ver := unframeVersioned(raw)
		chunks[idx] = payload
		vers[idx] = ver
	}
	return chunks, vers, floor, nil
}

// DeleteObjectVer removes the object's chunks and persists ver as a
// tombstone floor, so a write older than the delete is still refused after
// a restart. It reports whether the delete applied; a version older than
// the current floor is refused with a StaleError. The blob delete removes
// the old record along with the chunks and the tombstone is re-put after,
// so a crash exactly between the two loses the floor — the recovery cost
// is one spurious admit of an old write, not data corruption.
func (s *Store) DeleteObjectVer(key string, ver uint64) (bool, error) {
	if ver == 0 {
		_, err := s.blob.DeleteObject(context.Background(), s.bucket, key)
		return err == nil, err
	}
	cur, err := s.VersionOf(key)
	if err != nil {
		return false, err
	}
	if ver < cur {
		return false, &StaleError{Cur: cur}
	}
	if _, err := s.blob.DeleteObject(context.Background(), s.bucket, key); err != nil {
		return false, err
	}
	if err := store.PutVersion(context.Background(), s.blob, s.bucket, key, ver); err != nil {
		return false, err
	}
	vc := s.ensureVersions()
	vc.mu.Lock()
	if vc.vers[key] < ver {
		vc.vers[key] = ver
	}
	vc.mu.Unlock()
	return true, nil
}

// PutObjectVer encodes the object and writes each chunk to its placed
// region at the given write version, grouping chunks per region so each
// store raises its version record once.
func (c *Cluster) PutObjectVer(key string, data []byte, ver uint64) error {
	chunks, err := c.codec.Split(data)
	if err != nil {
		return fmt.Errorf("backend: encode %q: %w", key, err)
	}
	locs := c.placement.Locate(key, len(chunks))
	byRegion := make(map[geo.RegionID]map[int][]byte)
	for i, chunk := range chunks {
		st := c.stores[locs[i]]
		if st == nil {
			return fmt.Errorf("backend: placement names unknown region %v", locs[i])
		}
		m := byRegion[locs[i]]
		if m == nil {
			m = make(map[int][]byte)
			byRegion[locs[i]] = m
		}
		m[i] = chunk
	}
	for region, group := range byRegion {
		if err := c.stores[region].PutMultiVer(key, group, ver); err != nil {
			return fmt.Errorf("backend: store chunks of %q in %v: %w", key, region, err)
		}
	}
	return nil
}

// VersionOf returns the highest version floor any region records for the
// key — the cluster-wide view of its latest committed write.
func (c *Cluster) VersionOf(key string) (uint64, error) {
	var max uint64
	for _, s := range c.stores {
		ver, err := s.VersionOf(key)
		if err != nil {
			return 0, err
		}
		if ver > max {
			max = ver
		}
	}
	return max, nil
}

// DeleteObjectVer removes the object's chunks from every region and
// records ver as the tombstone floor in each. It reports whether any
// region held chunks.
func (c *Cluster) DeleteObjectVer(key string, ver uint64) (bool, error) {
	any := false
	for _, s := range c.stores {
		ok, err := s.DeleteObjectVer(key, ver)
		if err != nil {
			return any, err
		}
		any = any || ok
	}
	return any, nil
}
