package backend

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/store"
)

// clusterOn builds the standard 6-region RS(9,3) test cluster over an
// explicit blob adapter.
func clusterOn(t *testing.T, blob store.BlobStore) *Cluster {
	t.Helper()
	codec, err := erasure.New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	return NewClusterOn(geo.DefaultRegions(), codec, placement, blob)
}

// adapterVariants enumerates the blob stores the cluster seam tests sweep.
func adapterVariants(t *testing.T) map[string]func(t *testing.T) store.BlobStore {
	return map[string]func(t *testing.T) store.BlobStore{
		"mem": func(t *testing.T) store.BlobStore { return store.NewMem() },
		"disk": func(t *testing.T) store.BlobStore {
			d, err := store.NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"remote": func(t *testing.T) store.BlobStore {
			srv := httptest.NewServer(store.NewGateway(store.NewMem()))
			t.Cleanup(srv.Close)
			return store.NewRemote(srv.URL)
		},
	}
}

// TestClusterRegionOutageUnderAdapters exercises the down-region paths of
// every adapter: Put and Get fail with ErrDown while a region is dark, the
// object still decodes from the surviving regions' chunks, recovery
// restores direct reads, and the durable chunks survived the outage.
func TestClusterRegionOutageUnderAdapters(t *testing.T) {
	for name, open := range adapterVariants(t) {
		t.Run(name, func(t *testing.T) {
			c := clusterOn(t, open(t))
			data := make([]byte, 30_000)
			rand.New(rand.NewSource(3)).Read(data)
			if err := c.PutObject("obj", data); err != nil {
				t.Fatal(err)
			}

			for _, r := range geo.DefaultRegions() {
				st := c.Store(r)
				st.SetDown(true)
				if !st.Down() {
					t.Fatalf("region %v not reported down", r)
				}
				// The data path fails fast with the typed error...
				if _, err := c.GetChunk("obj", chunkIn(c, "obj", r)); !errors.Is(err, ErrDown) {
					t.Fatalf("region %v down, GetChunk: %v", r, err)
				}
				if err := st.Put(ChunkID{Key: "other", Index: 0}, []byte("x")); !errors.Is(err, ErrDown) {
					t.Fatalf("region %v down, Put: %v", r, err)
				}
				// ...and the degraded read decodes around the dark region.
				got, err := c.GetObject("obj")
				if err != nil {
					t.Fatalf("region %v down: %v", r, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("region %v down: wrong data", r)
				}
				st.SetDown(false)
				// Recovery: the region's durable chunks are intact.
				if _, err := c.GetChunk("obj", chunkIn(c, "obj", r)); err != nil {
					t.Fatalf("region %v recovered, GetChunk: %v", r, err)
				}
			}

			// Two regions down (4 chunks lost > m=3): must fail.
			c.Store(geo.Tokyo).SetDown(true)
			c.Store(geo.Sydney).SetDown(true)
			if _, err := c.GetObject("obj"); err == nil {
				t.Fatal("read should fail with 4 chunks unavailable")
			}
		})
	}
}

// TestClusterPartialChunkAvailability deletes chunks up to and then past
// the code's redundancy under each adapter: m missing chunks decode, m+1
// do not, and GetMulti reports exactly the surviving subset.
func TestClusterPartialChunkAvailability(t *testing.T) {
	for name, open := range adapterVariants(t) {
		t.Run(name, func(t *testing.T) {
			c := clusterOn(t, open(t))
			data := make([]byte, 18_000)
			rand.New(rand.NewSource(5)).Read(data)
			if err := c.PutObject("obj", data); err != nil {
				t.Fatal(err)
			}
			total := c.Codec().Total()
			locs := c.Placement().Locate("obj", total)

			// Drop m chunks: still decodable.
			for idx := 0; idx < c.Codec().M(); idx++ {
				if !c.Store(locs[idx]).Delete(ChunkID{Key: "obj", Index: idx}) {
					t.Fatalf("chunk %d not present to delete", idx)
				}
			}
			got, err := c.GetObject("obj")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("decode with m missing: %v", err)
			}

			// The region-level batched read reports only survivors.
			r0 := locs[0]
			want := []int{}
			for idx := 0; idx < total; idx++ {
				if locs[idx] == r0 && idx >= c.Codec().M() {
					want = append(want, idx)
				}
			}
			all := make([]int, 0, total)
			for idx := 0; idx < total; idx++ {
				if locs[idx] == r0 {
					all = append(all, idx)
				}
			}
			found, err := c.Store(r0).GetMulti("obj", all)
			if err != nil {
				t.Fatal(err)
			}
			if len(found) != len(want) {
				t.Fatalf("GetMulti found %d of %v, want %v", len(found), all, want)
			}

			// Drop one more: past redundancy, the object is gone.
			m := c.Codec().M()
			if !c.Store(locs[m]).Delete(ChunkID{Key: "obj", Index: m}) {
				t.Fatalf("chunk %d not present to delete", m)
			}
			if _, err := c.GetObject("obj"); err == nil {
				t.Fatal("decode succeeded with m+1 chunks missing")
			}
		})
	}
}

// TestClusterDiskReopenAfterRestart loads a cluster over a disk adapter,
// tears everything down, and rebuilds the cluster over a reopened adapter
// on the same root: the working set must decode without reloading.
func TestClusterDiskReopenAfterRestart(t *testing.T) {
	root := t.TempDir()
	d1, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	c1 := clusterOn(t, d1)
	data := make([]byte, 25_000)
	rand.New(rand.NewSource(9)).Read(data)
	for _, key := range []string{"obj-a", "obj-b"} {
		if err := c1.PutObject(key, data); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes := c1.TotalBytes()
	d1.Close()

	d2, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	c2 := clusterOn(t, d2)
	if got := c2.TotalBytes(); got != wantBytes {
		t.Fatalf("after reopen, TotalBytes = %d, want %d", got, wantBytes)
	}
	for _, key := range []string{"obj-a", "obj-b"} {
		got, err := c2.GetObject(key)
		if err != nil {
			t.Fatalf("after reopen, %q: %v", key, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("after reopen, %q: wrong data", key)
		}
	}
	// And a degraded read still works on the reopened tier.
	c2.Store(geo.Frankfurt).SetDown(true)
	if got, err := c2.GetObject("obj-a"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read after reopen: %v", err)
	}
}

// chunkIn returns one chunk index the placement puts in the region.
func chunkIn(c *Cluster, key string, r geo.RegionID) int {
	locs := c.Placement().Locate(key, c.Codec().Total())
	for idx, loc := range locs {
		if loc == r {
			return idx
		}
	}
	return -1
}
