package backend

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	codec, err := erasure.New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	return NewCluster(geo.DefaultRegions(), codec, placement)
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore(geo.Tokyo)
	if s.Region() != geo.Tokyo {
		t.Fatal("region wrong")
	}
	id := ChunkID{Key: "k", Index: 2}
	if _, err := s.Get(id); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	data := []byte("chunk")
	if err := s.Put(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("got %q err %v", got, err)
	}
	// Mutating caller or returned slices must not affect the store.
	data[0] = 'X'
	got[1] = 'Y'
	fresh, _ := s.Get(id)
	if !bytes.Equal(fresh, []byte("chunk")) {
		t.Fatal("store shares storage with callers")
	}
	if !s.Delete(id) || s.Delete(id) {
		t.Fatal("delete semantics wrong")
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore(geo.Dublin)
	s.Put(ChunkID{Key: "a", Index: 0}, make([]byte, 10))
	s.Put(ChunkID{Key: "a", Index: 1}, make([]byte, 20))
	s.Put(ChunkID{Key: "b", Index: 0}, make([]byte, 5))
	if s.Len() != 3 || s.Bytes() != 35 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestStoreFailureInjection(t *testing.T) {
	s := NewStore(geo.Sydney)
	id := ChunkID{Key: "k", Index: 0}
	s.Put(id, []byte("x"))
	s.SetDown(true)
	if !s.Down() {
		t.Fatal("Down not reported")
	}
	if _, err := s.Get(id); !errors.Is(err, ErrDown) {
		t.Fatalf("Get while down: %v", err)
	}
	if err := s.Put(id, []byte("y")); !errors.Is(err, ErrDown) {
		t.Fatalf("Put while down: %v", err)
	}
	s.SetDown(false)
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestClusterPutGetObject(t *testing.T) {
	c := newTestCluster(t)
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := c.PutObject("obj-1", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetObject("obj-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("object round trip failed")
	}
}

func TestClusterPlacementSpreadsChunks(t *testing.T) {
	c := newTestCluster(t)
	if err := c.PutObject("obj-1", make([]byte, 9000)); err != nil {
		t.Fatal(err)
	}
	// Round-robin over 6 regions: every region holds exactly 2 chunks.
	for _, r := range geo.DefaultRegions() {
		if n := c.Store(r).Len(); n != 2 {
			t.Fatalf("region %v holds %d chunks, want 2", r, n)
		}
	}
}

func TestClusterGetChunk(t *testing.T) {
	c := newTestCluster(t)
	data := make([]byte, 5000)
	rand.New(rand.NewSource(2)).Read(data)
	c.PutObject("obj", data)
	chunk, err := c.GetChunk("obj", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk) == 0 {
		t.Fatal("empty chunk")
	}
	if _, err := c.GetChunk("obj", 99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := c.GetChunk("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestClusterDegradedRead(t *testing.T) {
	c := newTestCluster(t)
	data := make([]byte, 30_000)
	rand.New(rand.NewSource(3)).Read(data)
	c.PutObject("obj", data)

	// Any single region down (2 chunks lost): still decodable (m=3).
	for _, r := range geo.DefaultRegions() {
		c.Store(r).SetDown(true)
		got, err := c.GetObject("obj")
		if err != nil {
			t.Fatalf("region %v down: %v", r, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("region %v down: wrong data", r)
		}
		c.Store(r).SetDown(false)
	}

	// Two regions down (4 chunks lost > m=3): must fail.
	c.Store(geo.Tokyo).SetDown(true)
	c.Store(geo.Sydney).SetDown(true)
	if _, err := c.GetObject("obj"); err == nil {
		t.Fatal("read should fail with 4 chunks unavailable")
	}
}

func TestClusterTotalBytesRedundancyOverhead(t *testing.T) {
	// The paper: 300 x 1 MB objects under RS(9,3) occupy ~400 MB total.
	// Verify the 4/3 overhead ratio on a scaled-down working set.
	c := newTestCluster(t)
	objSize := 9 * 1024
	n := 30
	for i := 0; i < n; i++ {
		if err := c.PutObject(geoKey(i), make([]byte, objSize)); err != nil {
			t.Fatal(err)
		}
	}
	total := c.TotalBytes()
	raw := int64(n * objSize)
	ratio := float64(total) / float64(raw)
	if ratio < 4.0/3.0 || ratio > 4.0/3.0*1.05 {
		t.Fatalf("storage overhead ratio %.3f, want ~1.333", ratio)
	}
}

func TestClusterConcurrentReaders(t *testing.T) {
	c := newTestCluster(t)
	data := make([]byte, 20_000)
	rand.New(rand.NewSource(4)).Read(data)
	c.PutObject("obj", data)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := c.GetObject("obj")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- errors.New("data mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func geoKey(i int) string { return fmt.Sprintf("obj-%03d", i) }
