package backend

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/hlc"
	"github.com/agardist/agar/internal/store"
)

// The versioned write-path conformance suite. Every store.BlobStore
// adapter must give the versioned Store API the same semantics:
// write-through durability of chunks AND version records, last-writer-wins
// monotonicity, and invalidation floors that survive a reopen (for the
// disk adapter, a crash rescan of the directory layout).
//
// Each adapter fixture returns the store under test plus a reopen function
// that simulates a process restart: a fresh *Store (with a cold version
// cache) over the durable state the previous instance left behind.

type versionedFixture struct {
	name string
	open func(t *testing.T) (*Store, func() *Store)
}

func versionedFixtures() []versionedFixture {
	return []versionedFixture{
		{name: "mem", open: func(t *testing.T) (*Store, func() *Store) {
			mem := store.NewMem()
			return NewStoreOn(geo.Frankfurt, mem), func() *Store {
				return NewStoreOn(geo.Frankfurt, mem)
			}
		}},
		{name: "disk", open: func(t *testing.T) (*Store, func() *Store) {
			dir := t.TempDir()
			disk, err := store.NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			return NewStoreOn(geo.Frankfurt, disk), func() *Store {
				// A crash rescan: a brand-new Disk over the same root must
				// recover every chunk and version record from the layout.
				reopened, err := store.NewDisk(dir)
				if err != nil {
					t.Fatal(err)
				}
				return NewStoreOn(geo.Frankfurt, reopened)
			}
		}},
		{name: "remote", open: func(t *testing.T) (*Store, func() *Store) {
			disk, err := store.NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(store.NewGateway(disk))
			t.Cleanup(srv.Close)
			remote := store.NewRemote(srv.URL)
			t.Cleanup(func() { remote.Close() })
			return NewStoreOn(geo.Frankfurt, remote), func() *Store {
				fresh := store.NewRemote(srv.URL)
				t.Cleanup(func() { fresh.Close() })
				return NewStoreOn(geo.Frankfurt, fresh)
			}
		}},
	}
}

func TestVersionedWriteThroughDurability(t *testing.T) {
	for _, fx := range versionedFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			s, reopen := fx.open(t)
			v1 := uint64(hlc.Pack(1000, 1))
			chunks := map[int][]byte{
				0: []byte("alpha-chunk"),
				1: []byte("beta-chunk"),
			}
			if err := s.PutMultiVer("obj", chunks, v1); err != nil {
				t.Fatal(err)
			}

			// The same instance reads its own write.
			got, vers, floor, err := s.GetMultiVer("obj", []int{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			if floor != v1 || vers[0] != v1 || vers[1] != v1 {
				t.Fatalf("floor=%d vers=%v, want all %d", floor, vers, v1)
			}
			if !bytes.Equal(got[0], chunks[0]) || !bytes.Equal(got[1], chunks[1]) {
				t.Fatalf("payload mangled: %q %q", got[0], got[1])
			}

			// A fresh instance (restart / crash rescan) sees the same state.
			s2 := reopen()
			if ver, err := s2.VersionOf("obj"); err != nil || ver != v1 {
				t.Fatalf("reopened VersionOf = %d, %v", ver, err)
			}
			data, ver, err := s2.GetVer(ChunkID{Key: "obj", Index: 1})
			if err != nil || ver != v1 || !bytes.Equal(data, chunks[1]) {
				t.Fatalf("reopened GetVer = %q v%d, %v", data, ver, err)
			}

			// Unversioned keys stay on the raw path: no record, no framing.
			if err := s.Put(ChunkID{Key: "legacy", Index: 0}, []byte("raw-bytes")); err != nil {
				t.Fatal(err)
			}
			data, ver, err = s.GetVer(ChunkID{Key: "legacy", Index: 0})
			if err != nil || ver != 0 || !bytes.Equal(data, []byte("raw-bytes")) {
				t.Fatalf("legacy GetVer = %q v%d, %v", data, ver, err)
			}
		})
	}
}

func TestVersionedMonotonicity(t *testing.T) {
	for _, fx := range versionedFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			s, reopen := fx.open(t)
			v2 := uint64(hlc.Pack(2000, 0))
			if err := s.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("new"), v2); err != nil {
				t.Fatal(err)
			}

			// An older write loses, with the winning version in the error.
			v1 := uint64(hlc.Pack(1000, 0))
			err := s.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("old"), v1)
			if !errors.Is(err, ErrStale) {
				t.Fatalf("stale put: %v", err)
			}
			var stale *StaleError
			if !errors.As(err, &stale) || stale.Cur != v2 {
				t.Fatalf("stale detail: %#v", err)
			}
			if err := s.PutMultiVer("obj", map[int][]byte{1: []byte("old")}, v1); !errors.Is(err, ErrStale) {
				t.Fatalf("stale multi-put: %v", err)
			}

			// Equal and newer versions are admitted (same-write retries and
			// later writes respectively).
			if err := s.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("retry"), v2); err != nil {
				t.Fatal(err)
			}
			v3 := uint64(hlc.Pack(3000, 0))
			if err := s.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("newest"), v3); err != nil {
				t.Fatal(err)
			}

			// The floor survives a restart: the stale write still loses
			// against a cold cache.
			s2 := reopen()
			if err := s2.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("old"), v1); !errors.Is(err, ErrStale) {
				t.Fatalf("stale put after reopen: %v", err)
			}
			data, ver, err := s2.GetVer(ChunkID{Key: "obj", Index: 0})
			if err != nil || ver != v3 || !bytes.Equal(data, []byte("newest")) {
				t.Fatalf("after reopen: %q v%d, %v", data, ver, err)
			}
		})
	}
}

func TestVersionedInvalidationSurvivesReopen(t *testing.T) {
	for _, fx := range versionedFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			s, reopen := fx.open(t)
			v1 := uint64(hlc.Pack(1000, 0))
			if err := s.PutMultiVer("obj", map[int][]byte{0: []byte("doomed")}, v1); err != nil {
				t.Fatal(err)
			}

			vDel := uint64(hlc.Pack(2000, 0))
			ok, err := s.DeleteObjectVer("obj", vDel)
			if err != nil || !ok {
				t.Fatalf("delete: ok=%v err=%v", ok, err)
			}
			if _, err := s.Get(ChunkID{Key: "obj", Index: 0}); !errors.Is(err, ErrNotFound) {
				t.Fatalf("chunk survived delete: %v", err)
			}

			// A delete older than the tombstone is refused.
			if _, err := s.DeleteObjectVer("obj", v1); !errors.Is(err, ErrStale) {
				t.Fatalf("stale delete: %v", err)
			}

			// After a restart the tombstone still blocks the pre-delete
			// write — the invalidation is durable, not just cached.
			s2 := reopen()
			if ver, err := s2.VersionOf("obj"); err != nil || ver != vDel {
				t.Fatalf("tombstone floor after reopen = %d, %v", ver, err)
			}
			if err := s2.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("zombie"), v1); !errors.Is(err, ErrStale) {
				t.Fatalf("pre-delete write admitted after reopen: %v", err)
			}

			// A genuinely newer write reclaims the key.
			v3 := uint64(hlc.Pack(3000, 0))
			if err := s2.PutVer(ChunkID{Key: "obj", Index: 0}, []byte("reborn"), v3); err != nil {
				t.Fatal(err)
			}
			data, ver, err := s2.GetVer(ChunkID{Key: "obj", Index: 0})
			if err != nil || ver != v3 || !bytes.Equal(data, []byte("reborn")) {
				t.Fatalf("rebirth: %q v%d, %v", data, ver, err)
			}
		})
	}
}

// TestClusterPutObjectVer drives the cluster-level versioned write across
// regions: every region's floor rises to the write version and the object
// decodes back intact through the versioned read path.
func TestClusterPutObjectVer(t *testing.T) {
	c := newTestCluster(t)
	payload := bytes.Repeat([]byte("agar-versioned!"), 64)
	v1 := uint64(hlc.Pack(1000, 0))
	if err := c.PutObjectVer("obj", payload, v1); err != nil {
		t.Fatal(err)
	}
	if ver, err := c.VersionOf("obj"); err != nil || ver != v1 {
		t.Fatalf("cluster VersionOf = %d, %v", ver, err)
	}

	// Every placed chunk reads back at the write version.
	total := c.Codec().Total()
	locs := c.Placement().Locate("obj", total)
	chunks := make([][]byte, total)
	for i := 0; i < total; i++ {
		data, ver, err := c.Store(locs[i]).GetVer(ChunkID{Key: "obj", Index: i})
		if err != nil || ver != v1 {
			t.Fatalf("chunk %d: v%d, %v", i, ver, err)
		}
		chunks[i] = data
	}
	decoded, err := c.Codec().Decode(chunks)
	if err != nil || !bytes.Equal(decoded, payload) {
		t.Fatalf("decode after versioned put: %v", err)
	}

	// A cluster-wide stale write is refused by the first region it hits.
	if err := c.PutObjectVer("obj", payload, uint64(hlc.Pack(500, 0))); !errors.Is(err, ErrStale) {
		t.Fatalf("stale cluster put: %v", err)
	}

	// Versioned delete tombstones every region.
	vDel := uint64(hlc.Pack(2000, 0))
	if _, err := c.DeleteObjectVer("obj", vDel); err != nil {
		t.Fatal(err)
	}
	if ver, err := c.VersionOf("obj"); err != nil || ver != vDel {
		t.Fatalf("cluster tombstone = %d, %v", ver, err)
	}
	if _, err := c.GetObject("obj"); err == nil {
		t.Fatal("object survived versioned delete")
	}
}
