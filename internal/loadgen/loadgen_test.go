package loadgen

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeIssuer resolves every op after a fixed synthetic delay and records
// the issued sequence.
type fakeIssuer struct {
	delay time.Duration
	mu    sync.Mutex
	ops   []Op
	fail  func(Op) error
}

func (f *fakeIssuer) Issue(op Op, done func(error)) {
	f.mu.Lock()
	f.ops = append(f.ops, op)
	f.mu.Unlock()
	var err error
	if f.fail != nil {
		err = f.fail(op)
	}
	if f.delay == 0 {
		done(err)
		return
	}
	go func() {
		time.Sleep(f.delay)
		done(err)
	}()
}

func testConfig() Config {
	return Config{
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Seed:     7,
		Mix:      []OpWeight{{Kind: "get", Weight: 70}, {Kind: "mget", Weight: 30}},
		Keys:     64,
	}
}

// TestRunDeterministicSequence: two runs with the same seed issue the
// identical (kind, key) schedule — the property that makes sweeps
// comparable across binaries and runs.
func TestRunDeterministicSequence(t *testing.T) {
	var seqs [2][]Op
	for i := range seqs {
		iss := &fakeIssuer{}
		if _, err := Run(testConfig(), iss); err != nil {
			t.Fatal(err)
		}
		seqs[i] = iss.ops
	}
	if len(seqs[0]) == 0 {
		t.Fatal("no ops issued")
	}
	if len(seqs[0]) != len(seqs[1]) {
		t.Fatalf("op counts differ: %d vs %d", len(seqs[0]), len(seqs[1]))
	}
	for i := range seqs[0] {
		if seqs[0][i] != seqs[1][i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, seqs[0][i], seqs[1][i])
		}
	}
}

// TestRunPointShape checks a run's Point: both mix kinds present, counts
// near rate*duration, monotone quantiles, warmup excluded, errors counted.
func TestRunPointShape(t *testing.T) {
	iss := &fakeIssuer{delay: time.Millisecond, fail: func(op Op) error {
		if op.Kind == "mget" {
			return errors.New("boom")
		}
		return nil
	}}
	cfg := testConfig()
	pt, err := Run(cfg, iss)
	if err != nil {
		t.Fatal(err)
	}
	if pt.OfferedOps != cfg.Rate {
		t.Fatalf("offered = %v", pt.OfferedOps)
	}
	var total int64
	for kind, st := range pt.Ops {
		total += st.Count
		if !(st.P50Us <= st.P99Us && st.P99Us <= st.P999Us && st.P999Us <= st.MaxUs) {
			t.Fatalf("%s quantiles not monotone: %+v", kind, st)
		}
		// Synthetic 1ms floor: measured from scheduled time, every sample
		// must be at least the issuer's delay.
		if st.P50Us < 900 {
			t.Fatalf("%s p50 %vµs below the 1ms synthetic service time", kind, st.P50Us)
		}
		switch kind {
		case "get":
			if st.Errors != 0 {
				t.Fatalf("get errors = %d", st.Errors)
			}
		case "mget":
			if st.Errors != st.Count {
				t.Fatalf("mget errors = %d of %d", st.Errors, st.Count)
			}
		default:
			t.Fatalf("unexpected kind %q", kind)
		}
	}
	want := cfg.Rate * cfg.Duration.Seconds() // measured window only
	if float64(total) < want*0.8 || float64(total) > want*1.2 {
		t.Fatalf("measured %d ops, want about %.0f (warmup must be excluded)", total, want)
	}
	if pt.AchievedOps <= 0 {
		t.Fatalf("achieved = %v", pt.AchievedOps)
	}
}

// TestRunSlowOps: the point retains at most SlowK in-window completions,
// slowest first, each carrying the deterministic trace ID its op was
// issued with — the join key against the servers' /debug/traces.
func TestRunSlowOps(t *testing.T) {
	iss := &fakeIssuer{delay: time.Millisecond}
	pt, err := Run(testConfig(), iss)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.SlowOps) == 0 || len(pt.SlowOps) > SlowK {
		t.Fatalf("SlowOps len = %d, want 1..%d", len(pt.SlowOps), SlowK)
	}
	traces := map[string]bool{}
	for i, s := range pt.SlowOps {
		if s.Kind == "" || s.Key == "" || len(s.Trace) != 16 || s.LatUs <= 0 {
			t.Fatalf("slow op %d malformed: %+v", i, s)
		}
		if i > 0 && s.LatUs > pt.SlowOps[i-1].LatUs {
			t.Fatalf("slow ops not slowest-first: %v after %v", s.LatUs, pt.SlowOps[i-1].LatUs)
		}
		if traces[s.Trace] {
			t.Fatalf("duplicate trace %s", s.Trace)
		}
		traces[s.Trace] = true
	}
	// Each slow op's trace must belong to an op the issuer actually saw.
	issued := map[string]Op{}
	for _, op := range iss.ops {
		issued[op.Trace] = op
	}
	for _, s := range pt.SlowOps {
		op, ok := issued[s.Trace]
		if !ok || op.Kind != s.Kind || op.Key != s.Key {
			t.Fatalf("slow op %+v does not match issued op %+v", s, op)
		}
	}
}

// TestPickTraceDeterministicAndDistinct: trace IDs are a pure function of
// the seed (so reports are reproducible) yet unique across the schedule,
// and drawing them must not perturb the v1 (kind, key) stream — pinned by
// the separate trace rng.
func TestPickTraceDeterministicAndDistinct(t *testing.T) {
	cfg := testConfig()
	a, b := newOpPicker(&cfg), newOpPicker(&cfg)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		opA, opB := a.pick(), b.pick()
		if opA != opB {
			t.Fatalf("pick %d diverged: %+v vs %+v", i, opA, opB)
		}
		if len(opA.Trace) != 16 || seen[opA.Trace] {
			t.Fatalf("pick %d trace %q malformed or repeated", i, opA.Trace)
		}
		seen[opA.Trace] = true
	}
}

// TestRunWaitTimeout: an issuer that never resolves must not hang Run.
func TestRunWaitTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 20 * time.Millisecond
	cfg.Warmup = 0
	cfg.WaitTimeout = 50 * time.Millisecond
	_, err := Run(cfg, issuerFunc(func(Op, func(error)) {}))
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("err = %v, want unresolved timeout", err)
	}
}

type issuerFunc func(Op, func(error))

func (f issuerFunc) Issue(op Op, done func(error)) { f(op, done) }

// TestSweepFreshIssuerPerPoint: each rung gets its own issuer and its
// teardown runs before the next rung starts.
func TestSweepFreshIssuerPerPoint(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 30 * time.Millisecond
	cfg.Warmup = 0
	var built, closed atomic.Int32
	pts, err := Sweep(cfg, []float64{500, 1000, 2000}, func() (Issuer, func(), error) {
		if built.Add(1)-1 != closed.Load() {
			t.Error("issuer built before the previous one was torn down")
		}
		return &fakeIssuer{}, func() { closed.Add(1) }, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || built.Load() != 3 || closed.Load() != 3 {
		t.Fatalf("points=%d built=%d closed=%d", len(pts), built.Load(), closed.Load())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OfferedOps <= pts[i-1].OfferedOps {
			t.Fatalf("points not ascending: %v then %v", pts[i-1].OfferedOps, pts[i].OfferedOps)
		}
	}
}

func mkPoint(offered, achieved, p99 float64) Point {
	return Point{
		OfferedOps: offered, AchievedOps: achieved, DurationS: 1,
		Ops: map[string]OpStats{
			"get":  {Count: int64(achieved * 0.7), MeanUs: p99 / 2, P50Us: p99 / 2, P90Us: p99 * 0.8, P99Us: p99, P999Us: p99 * 2, MaxUs: p99 * 3},
			"mget": {Count: int64(achieved * 0.3), MeanUs: p99, P50Us: p99, P90Us: p99 * 1.5, P99Us: p99 * 2, P999Us: p99 * 3, MaxUs: p99 * 4},
		},
	}
}

// TestComputeKnee: the knee is the last ascending point holding >= 95%
// efficiency, with the dominant op's p99 attached.
func TestComputeKnee(t *testing.T) {
	r := &Report{Schema: Schema, Points: []Point{
		mkPoint(1000, 998, 200),
		mkPoint(2000, 1990, 300),
		mkPoint(4000, 3950, 800),
		mkPoint(8000, 5200, 9000), // 65% — past the knee
	}}
	r.ComputeKnee()
	if r.Knee == nil || r.Knee.OfferedOps != 4000 {
		t.Fatalf("knee = %+v, want offered 4000", r.Knee)
	}
	if r.Knee.DominantOp != "get" || r.Knee.P99Us != 800 {
		t.Fatalf("knee dominant = %+v", r.Knee)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	// No point keeps up: the ceiling (highest achieved) stands in.
	r2 := &Report{Schema: Schema, Points: []Point{
		mkPoint(4000, 3000, 500),
		mkPoint(8000, 3600, 900),
	}}
	r2.ComputeKnee()
	if r2.Knee == nil || r2.Knee.OfferedOps != 8000 {
		t.Fatalf("ceiling knee = %+v", r2.Knee)
	}
}

// TestReportValidate rejects the failure shapes CI must catch: wrong
// schema, empty sweep, non-monotone quantiles, phantom knee, and accepts
// a round-tripped good report.
func TestReportValidate(t *testing.T) {
	good := &Report{Schema: Schema, Points: []Point{mkPoint(1000, 990, 250)}}
	good.ComputeKnee()
	blob, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}

	cases := map[string]func(*Report){
		"schema":   func(r *Report) { r.Schema = "agar-load/v0" },
		"empty":    func(r *Report) { r.Points = nil },
		"offered":  func(r *Report) { r.Points[0].OfferedOps = 0 },
		"noops":    func(r *Report) { r.Points[0].Ops = nil },
		"quantile": func(r *Report) { s := r.Points[0].Ops["get"]; s.P99Us = s.P50Us - 1; r.Points[0].Ops["get"] = s },
		"errors":   func(r *Report) { s := r.Points[0].Ops["get"]; s.Errors = s.Count + 1; r.Points[0].Ops["get"] = s },
		"knee":     func(r *Report) { r.Knee = &Knee{OfferedOps: 31337} },
		"slow": func(r *Report) {
			r.Points[0].SlowOps = []SlowOp{{Kind: "get", LatUs: 1}, {Kind: "get", LatUs: 2}}
		},
	}
	for name, mutate := range cases {
		r := &Report{}
		if err := json.Unmarshal(blob, r); err != nil {
			t.Fatal(err)
		}
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: mutation passed validation", name)
		}
	}
}

// TestMarkdownSection: the rendered table carries every rate and kind plus
// the knee line.
func TestMarkdownSection(t *testing.T) {
	r := &Report{Schema: Schema, Points: []Point{mkPoint(2000, 1990, 300), mkPoint(1000, 998, 200)}}
	r.ComputeKnee()
	md := r.MarkdownSection()
	for _, want := range []string{"| 1000 |", "| 2000 |", "| get |", "| mget |", "Saturation knee"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// Ascending rate order regardless of input order.
	if strings.Index(md, "| 1000 |") > strings.Index(md, "| 2000 |") {
		t.Error("points not sorted by offered rate")
	}
}

// TestParseMixAndRates covers the flag grammars.
func TestParseMixAndRates(t *testing.T) {
	mix, err := ParseMix(" get=70, mget=30 ")
	if err != nil || len(mix) != 2 || mix[0].Kind != "get" || mix[1].Weight != 30 {
		t.Fatalf("mix = %+v, err = %v", mix, err)
	}
	for _, bad := range []string{"", "get", "get=0", "get=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	rates, err := ParseRates("2000,500, 1000")
	if err != nil || len(rates) != 3 || rates[0] != 500 || rates[2] != 2000 {
		t.Fatalf("rates = %v, err = %v", rates, err)
	}
	for _, bad := range []string{"", "0", "x", "-5"} {
		if _, err := ParseRates(bad); err == nil {
			t.Errorf("ParseRates(%q) accepted", bad)
		}
	}
}

// TestZipfSkew: with a strong skew the most popular key must dominate.
func TestZipfSkew(t *testing.T) {
	cfg := testConfig()
	cfg.Skew = 1.5
	p := newOpPicker(&cfg)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[p.pick().Key]++
	}
	if counts["obj-0"] < counts["obj-63"] {
		t.Fatalf("zipf head obj-0=%d not ahead of tail obj-63=%d", counts["obj-0"], counts["obj-63"])
	}
}

// TestConfigValidate rejects the bad shapes.
func TestConfigValidate(t *testing.T) {
	mutations := map[string]func(*Config){
		"rate":     func(c *Config) { c.Rate = 0 },
		"duration": func(c *Config) { c.Duration = 0 },
		"mix":      func(c *Config) { c.Mix = nil },
		"weight":   func(c *Config) { c.Mix = []OpWeight{{Kind: "get", Weight: -1}} },
		"keys":     func(c *Config) { c.Keys = 0 },
	}
	for name, mutate := range mutations {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Run(cfg, &fakeIssuer{}); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}
