// Package loadgen generates open-loop load against a live Agar cluster and
// records coordinated-omission-safe latency curves.
//
// Closed-loop drivers — a fixed fleet of workers each waiting for one
// reply before sending the next request — cannot measure a server's
// behaviour under offered load: when the server slows down, the driver
// slows down with it, politely hiding every queueing delay the real world
// would have seen (the coordinated-omission trap). This package instead
// schedules arrivals on a fixed-rate clock that does not care how the
// server is doing: operation i is due at start + i/rate, it is sent as
// soon as the scheduler reaches it, and its latency is measured from the
// *scheduled* arrival time — so time an op spent waiting behind a stalled
// connection counts against the server, exactly as a user would have
// experienced it.
//
// Run drives one (rate, duration) point through a caller-supplied Issuer;
// Sweep walks a rate ladder and assembles a Report with per-opcode
// p50/p99/p999, achieved-vs-offered throughput, and the saturation knee —
// the last offered rate the server still kept up with. cmd/agar-bench
// -load is the driver that aims this at a live cluster.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Op is one scheduled operation: a kind from the configured mix, the key
// it targets, and the trace ID the Issuer should propagate on the wire.
// What a kind means on the wire — which opcode, how many chunk indices,
// what payload — is the Issuer's business; loadgen only guarantees the
// deterministic (kind, key, trace) sequence for a given seed.
type Op struct {
	Kind string
	Key  string
	// Trace is a 16-hex-digit trace ID, unique per op and deterministic per
	// seed. Issuers that speak the Agar wire protocol stamp it into the
	// frame's trace header, so the report's slowest ops (Point.SlowOps) can
	// be joined against the servers' /debug/traces flight recorders.
	Trace string
}

// Issuer sends one operation and calls done exactly once when its reply
// arrives (or the attempt fails). Issue may block for back-pressure — a
// full pipeline window, a borrowed connection — and that blocking is
// intentionally charged to the op's latency: the clock started at its
// scheduled arrival, not at Issue.
type Issuer interface {
	Issue(op Op, done func(error))
}

// OpWeight is one entry of the operation mix.
type OpWeight struct {
	Kind   string
	Weight float64
}

// Config describes one open-loop run.
type Config struct {
	// Rate is the offered load in operations per second.
	Rate float64
	// Duration is the measured window; Warmup runs first at the same rate
	// with latencies discarded (cold caches and fresh connections would
	// otherwise pollute the tail).
	Duration time.Duration
	Warmup   time.Duration
	// Seed makes the op sequence deterministic: same seed, same mix, same
	// key space — same (kind, key) schedule, every run.
	Seed int64
	// Mix weights the op kinds; picks are proportional to Weight.
	Mix []OpWeight
	// Keys is the key-space size; keys are "obj-0" … "obj-(Keys-1)".
	Keys int
	// Skew is the Zipf exponent for key popularity; values <= 1 mean
	// uniform (rand.Zipf requires s > 1).
	Skew float64
	// WaitTimeout bounds how long Run waits for stragglers after the last
	// op is issued; zero means 30 seconds.
	WaitTimeout time.Duration
}

func (c *Config) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: rate %v must be positive", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration %v must be positive", c.Duration)
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("loadgen: empty op mix")
	}
	for _, w := range c.Mix {
		if w.Weight <= 0 || w.Kind == "" {
			return fmt.Errorf("loadgen: bad mix entry %q=%v", w.Kind, w.Weight)
		}
	}
	if c.Keys <= 0 {
		return fmt.Errorf("loadgen: key space %d must be positive", c.Keys)
	}
	return nil
}

// ParseMix parses a "kind=weight,kind=weight" flag value ("get=70,mget=30")
// into an op mix.
func ParseMix(s string) ([]OpWeight, error) {
	var out []OpWeight
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weight, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not kind=weight", part)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("loadgen: mix weight %q must be a positive number", weight)
		}
		out = append(out, OpWeight{Kind: strings.TrimSpace(kind), Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix %q", s)
	}
	return out, nil
}

// ParseRates parses a comma-separated offered-load ladder ("500,1000,2000")
// into ascending ops/s values.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("loadgen: rate %q must be a positive number", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate ladder %q", s)
	}
	sort.Float64s(out)
	return out, nil
}

// opPicker draws the deterministic op sequence: weighted kind picks and
// Zipf-or-uniform key picks from one seeded source. Not safe for
// concurrent use; the scheduler goroutine owns it.
type opPicker struct {
	rng *rand.Rand
	// trng draws trace IDs from its own stream: a shared source would shift
	// every (kind, key) draw by one, silently changing the schedule a seed
	// produced before traces existed.
	trng *rand.Rand
	zipf *rand.Zipf
	keys int
	mix  []OpWeight
	cum  []float64
	tot  float64
}

func newOpPicker(cfg *Config) *opPicker {
	p := &opPicker{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		trng: rand.New(rand.NewSource(cfg.Seed ^ 0x7472616365)), // "trace"
		keys: cfg.Keys, mix: cfg.Mix,
	}
	if cfg.Skew > 1 {
		p.zipf = rand.NewZipf(p.rng, cfg.Skew, 1, uint64(cfg.Keys-1))
	}
	p.cum = make([]float64, len(cfg.Mix))
	for i, w := range cfg.Mix {
		p.tot += w.Weight
		p.cum[i] = p.tot
	}
	return p
}

func (p *opPicker) pick() Op {
	var key uint64
	if p.zipf != nil {
		key = p.zipf.Uint64()
	} else {
		key = uint64(p.rng.Intn(p.keys))
	}
	r := p.rng.Float64() * p.tot
	kind := p.mix[len(p.mix)-1].Kind
	for i, c := range p.cum {
		if r < c {
			kind = p.mix[i].Kind
			break
		}
	}
	tid := p.trng.Uint64()
	if tid == 0 {
		tid = 1 // zero means "untraced" on the wire
	}
	return Op{
		Kind:  kind,
		Key:   "obj-" + strconv.FormatUint(key, 10),
		Trace: fmt.Sprintf("%016x", tid),
	}
}
