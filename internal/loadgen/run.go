package loadgen

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// recorder accumulates per-kind completion latencies during the measured
// window. Slices are preallocated from the expected op count so the
// steady-state record path is one lock and two appends.
type recorder struct {
	mu      sync.Mutex
	samples map[string][]time.Duration
	errs    map[string]int64
	// inWindow counts measured ops whose *completion* landed inside the
	// measured window. Ops that resolve during the post-window drain still
	// contribute latency samples (their lateness is the point), but only
	// in-window completions count as achieved throughput — otherwise a
	// saturated server that eventually drains its backlog would score 100%
	// efficiency at any offered rate.
	inWindow int64
	// slow holds the SlowK slowest in-window completions, ascending by
	// latency so index 0 is the cheapest to displace.
	slow []SlowOp
}

// noteSlow offers one in-window completion to the slow set. Caller holds mu.
func (r *recorder) noteSlow(op Op, lat time.Duration) {
	l := float64(lat) / float64(time.Microsecond)
	if len(r.slow) == SlowK && l <= r.slow[0].LatUs {
		return
	}
	i := sort.Search(len(r.slow), func(i int) bool { return r.slow[i].LatUs >= l })
	r.slow = append(r.slow, SlowOp{})
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = SlowOp{Kind: op.Kind, Key: op.Key, Trace: op.Trace, LatUs: l}
	if len(r.slow) > SlowK {
		r.slow = r.slow[1:]
	}
}

func newRecorder(cfg *Config) *recorder {
	expected := int(cfg.Rate*cfg.Duration.Seconds())/len(cfg.Mix) + 16
	r := &recorder{
		samples: make(map[string][]time.Duration, len(cfg.Mix)),
		errs:    make(map[string]int64, len(cfg.Mix)),
	}
	for _, w := range cfg.Mix {
		r.samples[w.Kind] = make([]time.Duration, 0, expected)
	}
	return r
}

func (r *recorder) record(op Op, lat time.Duration, err error, inWindow bool) {
	r.mu.Lock()
	r.samples[op.Kind] = append(r.samples[op.Kind], lat)
	if err != nil {
		r.errs[op.Kind]++
	}
	if inWindow {
		r.inWindow++
		r.noteSlow(op, lat)
	}
	r.mu.Unlock()
}

// Run drives one open-loop point: ops are issued on the fixed-rate
// schedule for Warmup+Duration, each op's latency is measured from its
// *scheduled* arrival time (coordinated-omission safe — if the Issuer or
// server stalls, the backlog drains late and every queued op's lateness is
// recorded), and the achieved rate is measured ops *completed inside the
// measured window* over that window — late drain completions contribute
// latency samples but not throughput, so overload shows up as achieved
// falling off the offered line. Run blocks until every issued op has
// resolved or WaitTimeout expires.
func Run(cfg Config, issuer Issuer) (Point, error) {
	if err := cfg.validate(); err != nil {
		return Point{}, err
	}
	picker := newOpPicker(&cfg)
	rec := newRecorder(&cfg)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	end := measureFrom.Add(cfg.Duration)

	var wg sync.WaitGroup
	var maxLag time.Duration // scheduler-goroutine private
	var issued int64
	for i := 0; ; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if !sched.Before(end) {
			break
		}
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		op := picker.pick()
		measured := !sched.Before(measureFrom)
		if measured {
			issued++
			if lag := time.Since(sched); lag > maxLag {
				maxLag = lag
			}
		}
		sent, schedAt := op, sched
		wg.Add(1)
		issuer.Issue(op, func(err error) {
			if measured {
				now := time.Now()
				rec.record(sent, now.Sub(schedAt), err, !now.After(end))
			}
			wg.Done()
		})
	}

	waitTimeout := cfg.WaitTimeout
	if waitTimeout <= 0 {
		waitTimeout = 30 * time.Second
	}
	settled := make(chan struct{})
	go func() {
		wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(waitTimeout):
		return Point{}, fmt.Errorf("loadgen: ops still unresolved %v after the last issue", waitTimeout)
	}

	pt := Point{
		OfferedOps:   cfg.Rate,
		DurationS:    cfg.Duration.Seconds(),
		WarmupS:      cfg.Warmup.Seconds(),
		SendLagMaxUs: float64(maxLag) / float64(time.Microsecond),
		Ops:          make(map[string]OpStats, len(rec.samples)),
	}
	rec.mu.Lock()
	for kind, lats := range rec.samples {
		if len(lats) == 0 {
			continue
		}
		pt.Ops[kind] = summarize(lats, rec.errs[kind])
	}
	pt.AchievedOps = float64(rec.inWindow) / cfg.Duration.Seconds()
	for i := len(rec.slow) - 1; i >= 0; i-- { // slowest first
		pt.SlowOps = append(pt.SlowOps, rec.slow[i])
	}
	rec.mu.Unlock()
	return pt, nil
}

// Sweep runs one point per offered rate, ascending, against the Issuer
// that mkIssuer builds for each point (a fresh issuer per point keeps one
// saturated rung's backlog from bleeding into the next). progress, when
// non-nil, is called after each point.
func Sweep(base Config, rates []float64, mkIssuer func() (Issuer, func(), error), progress func(Point)) ([]Point, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate ladder")
	}
	points := make([]Point, 0, len(rates))
	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		issuer, done, err := mkIssuer()
		if err != nil {
			return points, fmt.Errorf("loadgen: issuer for %v ops/s: %w", rate, err)
		}
		pt, err := Run(cfg, issuer)
		if done != nil {
			done()
		}
		if err != nil {
			return points, fmt.Errorf("loadgen: point at %v ops/s: %w", rate, err)
		}
		points = append(points, pt)
		if progress != nil {
			progress(pt)
		}
	}
	return points, nil
}
