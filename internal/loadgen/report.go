package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Schema identifies the BENCH_load.json layout; bump on incompatible
// change so CI's -loadcheck rejects stale artifacts instead of
// misreading them. v2 added Point.SlowOps — the trace IDs of each rung's
// slowest in-window completions.
const Schema = "agar-load/v2"

// SlowK is how many of a rung's slowest in-window ops are retained in
// Point.SlowOps.
const SlowK = 8

// kneeEfficiency is the achieved/offered ratio a point must hold to count
// as "keeping up": the saturation knee is the last ascending offered rate
// at or above this efficiency.
const kneeEfficiency = 0.95

// OpStats summarizes one op kind's latency distribution at one offered
// rate. All latencies are microseconds, measured from each op's scheduled
// arrival time.
type OpStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Point is one rung of the offered-load ladder.
type Point struct {
	// OfferedOps is the scheduled arrival rate; AchievedOps is measured
	// completions over the measured window. Achieved well below offered
	// means the server ran out of capacity at this rung.
	OfferedOps  float64 `json:"offered_ops"`
	AchievedOps float64 `json:"achieved_ops"`
	DurationS   float64 `json:"duration_s"`
	WarmupS     float64 `json:"warmup_s"`
	// SendLagMaxUs is the worst scheduler lateness (actual minus scheduled
	// issue time). A large value means the generator itself could not hold
	// the schedule and the point overstates server latency.
	SendLagMaxUs float64            `json:"send_lag_max_us"`
	Ops          map[string]OpStats `json:"ops"`
	// SlowOps lists the rung's SlowK slowest in-window completions, slowest
	// first. Each carries the trace ID the issuer propagated on the wire, so
	// a tail-latency outlier here joins directly against the server-side
	// span breakdown the flight recorder kept under the same ID at
	// /debug/traces.
	SlowOps []SlowOp `json:"slow_ops,omitempty"`
}

// SlowOp is one tail-latency outlier: what was asked, how long it took
// (from its scheduled arrival), and the trace ID to look it up by on the
// servers it touched.
type SlowOp struct {
	Kind  string  `json:"kind"`
	Key   string  `json:"key"`
	Trace string  `json:"trace,omitempty"`
	LatUs float64 `json:"lat_us"`
}

// Knee is the detected saturation point of a sweep.
type Knee struct {
	// OfferedOps is the last offered rate with achieved/offered >=
	// kneeEfficiency; beyond it the server falls off the offered line.
	OfferedOps  float64 `json:"offered_ops"`
	AchievedOps float64 `json:"achieved_ops"`
	// DominantOp and P99Us report the busiest op kind's p99 at the knee —
	// the "latency you can have at the highest load the server sustains".
	DominantOp string  `json:"dominant_op"`
	P99Us      float64 `json:"p99_us"`
}

// Report is the BENCH_load.json artifact: one sweep's points, setup
// echo, and detected knee.
type Report struct {
	Schema      string         `json:"schema"`
	GeneratedAt string         `json:"generated_at,omitempty"`
	Setup       map[string]any `json:"setup,omitempty"`
	Points      []Point        `json:"points"`
	Knee        *Knee          `json:"knee,omitempty"`
}

// summarize sorts one kind's samples and reads exact quantiles off the
// sorted slice (sample counts here are small enough that exactness beats
// a sketch). The input slice is reordered.
func summarize(lats []time.Duration, errs int64) OpStats {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return us(lats[i])
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return OpStats{
		Count:  int64(len(lats)),
		Errors: errs,
		MeanUs: us(sum) / float64(len(lats)),
		P50Us:  q(0.50),
		P90Us:  q(0.90),
		P99Us:  q(0.99),
		P999Us: q(0.999),
		MaxUs:  us(lats[len(lats)-1]),
	}
}

// ComputeKnee scans the points in offered order and records the last one
// that kept achieved within kneeEfficiency of offered; if no point did,
// the highest-achieving point is the ceiling and stands in as the knee.
func (r *Report) ComputeKnee() {
	if len(r.Points) == 0 {
		r.Knee = nil
		return
	}
	pts := make([]Point, len(r.Points))
	copy(pts, r.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].OfferedOps < pts[j].OfferedOps })
	best := -1
	for i, p := range pts {
		if p.OfferedOps > 0 && p.AchievedOps/p.OfferedOps >= kneeEfficiency {
			best = i
		}
	}
	if best < 0 {
		for i, p := range pts {
			if best < 0 || p.AchievedOps > pts[best].AchievedOps {
				best = i
			}
		}
	}
	p := pts[best]
	k := &Knee{OfferedOps: p.OfferedOps, AchievedOps: p.AchievedOps}
	for kind, st := range p.Ops {
		if cur, ok := p.Ops[k.DominantOp]; !ok || st.Count > cur.Count ||
			(st.Count == cur.Count && kind < k.DominantOp) {
			k.DominantOp = kind
		}
	}
	if st, ok := p.Ops[k.DominantOp]; ok {
		k.P99Us = st.P99Us
	}
	r.Knee = k
}

// Validate machine-checks a decoded report: schema match, a non-trivial
// ladder, internally consistent per-point stats, and a knee that refers
// to a real point. CI's agar-bench -loadcheck gate runs exactly this.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("loadgen: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("loadgen: report has no points")
	}
	for i, p := range r.Points {
		if p.OfferedOps <= 0 {
			return fmt.Errorf("loadgen: point %d offered %v must be positive", i, p.OfferedOps)
		}
		if p.AchievedOps < 0 || p.DurationS <= 0 {
			return fmt.Errorf("loadgen: point %d has achieved %v over %vs", i, p.AchievedOps, p.DurationS)
		}
		if len(p.Ops) == 0 {
			return fmt.Errorf("loadgen: point %d (%v ops/s) recorded no ops", i, p.OfferedOps)
		}
		for kind, st := range p.Ops {
			if st.Count <= 0 {
				return fmt.Errorf("loadgen: point %d op %s count %d", i, kind, st.Count)
			}
			if st.Errors < 0 || st.Errors > st.Count {
				return fmt.Errorf("loadgen: point %d op %s errors %d of %d", i, kind, st.Errors, st.Count)
			}
			if !(st.P50Us <= st.P90Us && st.P90Us <= st.P99Us && st.P99Us <= st.P999Us && st.P999Us <= st.MaxUs) {
				return fmt.Errorf("loadgen: point %d op %s quantiles not monotone: %+v", i, kind, st)
			}
			if st.P50Us < 0 {
				return fmt.Errorf("loadgen: point %d op %s negative latency", i, kind)
			}
		}
		for j, s := range p.SlowOps {
			if s.Kind == "" || s.LatUs < 0 {
				return fmt.Errorf("loadgen: point %d slow op %d malformed: %+v", i, j, s)
			}
			if j > 0 && s.LatUs > p.SlowOps[j-1].LatUs {
				return fmt.Errorf("loadgen: point %d slow ops not slowest-first at %d", i, j)
			}
		}
	}
	if r.Knee != nil {
		found := false
		for _, p := range r.Points {
			if p.OfferedOps == r.Knee.OfferedOps {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("loadgen: knee at %v ops/s matches no point", r.Knee.OfferedOps)
		}
	}
	return nil
}

// MarkdownSection renders the sweep as the SCENARIOS.md table: one row per
// (offered rate, op kind) with the headline quantiles, then the knee line.
func (r *Report) MarkdownSection() string {
	var b strings.Builder
	b.WriteString("| offered ops/s | achieved | eff % | op | count | errs | p50 µs | p99 µs | p99.9 µs | max µs |\n")
	b.WriteString("|---:|---:|---:|:---|---:|---:|---:|---:|---:|---:|\n")
	pts := make([]Point, len(r.Points))
	copy(pts, r.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].OfferedOps < pts[j].OfferedOps })
	for _, p := range pts {
		kinds := make([]string, 0, len(p.Ops))
		for k := range p.Ops {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		eff := 0.0
		if p.OfferedOps > 0 {
			eff = 100 * p.AchievedOps / p.OfferedOps
		}
		for _, kind := range kinds {
			st := p.Ops[kind]
			fmt.Fprintf(&b, "| %.0f | %.0f | %.1f | %s | %d | %d | %.0f | %.0f | %.0f | %.0f |\n",
				p.OfferedOps, p.AchievedOps, eff, kind, st.Count, st.Errors,
				st.P50Us, st.P99Us, st.P999Us, st.MaxUs)
		}
	}
	if r.Knee != nil {
		fmt.Fprintf(&b, "\nSaturation knee: **%.0f ops/s offered** (achieved %.0f, %s p99 %.0f µs). ",
			r.Knee.OfferedOps, r.Knee.AchievedOps, r.Knee.DominantOp, r.Knee.P99Us)
		b.WriteString("Beyond the knee, achieved throughput falls off the offered line and queueing delay dominates the tail.\n")
	}
	return b.String()
}
