// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of Agar's design choices. Each
// benchmark regenerates its experiment against the simulated deployment and
// prints the same rows/series the paper reports (once, on the first
// iteration); the benchmark metric is the experiment's wall-clock cost.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Absolute latencies come from the calibrated wide-area model, so the
// numbers to compare against the paper are the *shapes*: who wins, by
// roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured for every row.
package agar_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/experiments"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/workload"
)

// benchParams shrinks the averaging (2 runs instead of 5) so the full bench
// suite finishes in minutes; the experiment structure is unchanged.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Runs = 2
	return p
}

var (
	deployOnce sync.Once
	deployment *experiments.Deployment
)

func benchDeployment(b *testing.B) *experiments.Deployment {
	b.Helper()
	deployOnce.Do(func() {
		d, err := experiments.NewDeployment(benchParams())
		if err != nil {
			panic(err)
		}
		deployment = d
	})
	return deployment
}

var printOnce sync.Map

// printFirst prints the rendered experiment output once per benchmark name.
func printFirst(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

// BenchmarkTableI regenerates Table I: per-region chunk-read latency from
// Frankfurt as probed by the region manager's warm-up.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableI()
		printFirst("table1", res.Render())
	}
}

// BenchmarkFigure2 regenerates Figure 2: average read latency vs number of
// chunks cached, Frankfurt and Sydney, infinite cache.
func BenchmarkFigure2(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(d)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig2", res.Render())
	}
}

// BenchmarkFigure6Frankfurt regenerates Figure 6a: Agar vs LRU-c vs LFU-c
// vs Backend in Frankfurt.
func BenchmarkFigure6Frankfurt(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.PolicyComparison(d, geo.Frankfurt)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6a", res.RenderFigure6())
	}
}

// BenchmarkFigure6Sydney regenerates Figure 6b.
func BenchmarkFigure6Sydney(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.PolicyComparison(d, geo.Sydney)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6b", res.RenderFigure6())
	}
}

// BenchmarkFigure7 regenerates Figure 7: hit ratios for the Figure 6
// configurations (both regions).
func BenchmarkFigure7(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		fra, err := experiments.PolicyComparison(d, geo.Frankfurt)
		if err != nil {
			b.Fatal(err)
		}
		syd, err := experiments.PolicyComparison(d, geo.Sydney)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig7", fra.RenderFigure7()+"\n"+syd.RenderFigure7())
	}
}

// BenchmarkFigure8a regenerates Figure 8a: the cache-size sweep.
func BenchmarkFigure8a(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8a(d)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig8a", res.Render())
	}
}

// BenchmarkFigure8b regenerates Figure 8b: the workload sweep.
func BenchmarkFigure8b(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8b(d)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig8b", res.Render())
	}
}

// BenchmarkFigure9 regenerates Figure 9: cumulative popularity CDFs.
func BenchmarkFigure9(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9(d)
		printFirst("fig9", res.Render())
	}
}

// BenchmarkFigure10 regenerates Figure 10: Agar cache-content composition.
func BenchmarkFigure10(b *testing.B) {
	d := benchDeployment(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(d)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig10", res.Render())
	}
}

// --- ablations ---

// ablationOptionSet builds the realistic option set the solver ablations
// share: Zipfian popularity over the default deployment as seen from
// Frankfurt.
func ablationOptionSet() *core.OptionSet {
	matrix := geo.DefaultMatrix()
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	z := workload.NewZipfian(300, 1.1, 1)
	weights := z.Weights()
	perKey := make(map[string][]core.Option, len(weights))
	for i, w := range weights {
		key := workload.KeyName(i)
		plan := geo.PlanFetch(matrix, placement, key, 12, geo.Frankfurt)
		perKey[key] = core.GenerateOptions(key, w*120, plan, 9, core.DefaultWeightGrid(9), 20*time.Millisecond)
	}
	return core.NewOptionSet(perKey)
}

// BenchmarkAblationSolvers compares the paper's POPULATE heuristic with the
// exact MCKP optimum and the density greedy on a realistic instance,
// reporting each solver's achieved objective value.
func BenchmarkAblationSolvers(b *testing.B) {
	set := ablationOptionSet()
	type row struct {
		name  string
		solve func() *core.Config
	}
	rows := []row{
		{"populate", func() *core.Config { return core.Populate(set, 90, core.PopulateParams{}) }},
		{"exact", func() *core.Config { return core.ExactMCKP(set, 90) }},
		{"greedy", func() *core.Config { return core.Greedy(set, 90) }},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) {
			var cfg *core.Config
			for i := 0; i < b.N; i++ {
				cfg = r.solve()
			}
			b.ReportMetric(cfg.Value, "objective")
			printFirst("ablation-solver-"+r.name,
				fmt.Sprintf("Ablation (solver=%s): objective=%.0f weight=%d keys=%d",
					r.name, cfg.Value, cfg.Weight, len(cfg.Options)))
		})
	}
}

// BenchmarkAblationEarlyStop quantifies the §VI early-stop optimisation:
// solve time and objective for different iteration budgets.
func BenchmarkAblationEarlyStop(b *testing.B) {
	set := ablationOptionSet()
	for _, stop := range []int{0, 32, 128, 512} {
		name := "full"
		if stop > 0 {
			name = fmt.Sprintf("stop%d", stop)
		}
		b.Run(name, func(b *testing.B) {
			var cfg *core.Config
			for i := 0; i < b.N; i++ {
				cfg = core.Populate(set, 90, core.PopulateParams{EarlyStop: stop})
			}
			b.ReportMetric(cfg.Value, "objective")
		})
	}
}

// BenchmarkAblationWeightGrid compares the full 1..k option grid with the
// paper's sparse {1,3,5,7,9} grid.
func BenchmarkAblationWeightGrid(b *testing.B) {
	matrix := geo.DefaultMatrix()
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	z := workload.NewZipfian(300, 1.1, 1)
	weights := z.Weights()
	grids := map[string][]int{
		"full":  core.DefaultWeightGrid(9),
		"paper": core.PaperWeightGrid(9),
	}
	for name, grid := range grids {
		b.Run(name, func(b *testing.B) {
			var cfg *core.Config
			for i := 0; i < b.N; i++ {
				perKey := make(map[string][]core.Option, len(weights))
				for j, w := range weights {
					key := workload.KeyName(j)
					plan := geo.PlanFetch(matrix, placement, key, 12, geo.Frankfurt)
					perKey[key] = core.GenerateOptions(key, w*120, plan, 9, grid, 20*time.Millisecond)
				}
				cfg = core.Populate(core.NewOptionSet(perKey), 90, core.PopulateParams{})
			}
			b.ReportMetric(cfg.Value, "objective")
		})
	}
}

// BenchmarkAblationSolverEndToEnd measures the actual read latency each
// solver achieves when driving a full Agar run in Frankfurt.
func BenchmarkAblationSolverEndToEnd(b *testing.B) {
	for _, solver := range []core.Solver{core.SolverPopulate, core.SolverExact, core.SolverGreedy} {
		b.Run(solver.String(), func(b *testing.B) {
			p := benchParams()
			p.Solver = solver
			d, err := experiments.NewDeployment(p)
			if err != nil {
				b.Fatal(err)
			}
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				res, err := d.Run(experiments.Strategy{Kind: experiments.StratAgar}, geo.Frankfurt, 10)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Mean
			}
			b.ReportMetric(float64(mean.Milliseconds()), "latency-ms")
			printFirst("ablation-e2e-"+solver.String(),
				fmt.Sprintf("Ablation end-to-end (solver=%s): mean=%v", solver, mean))
		})
	}
}

// BenchmarkAblationPlacementRotation compares the paper's fixed round-robin
// layout with key-rotated placement.
func BenchmarkAblationPlacementRotation(b *testing.B) {
	for _, rotate := range []bool{false, true} {
		name := "fixed"
		if rotate {
			name = "rotating"
		}
		b.Run(name, func(b *testing.B) {
			p := benchParams()
			p.RotatePlacement = rotate
			d, err := experiments.NewDeployment(p)
			if err != nil {
				b.Fatal(err)
			}
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				res, err := d.Run(experiments.Strategy{Kind: experiments.StratAgar}, geo.Frankfurt, 10)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Mean
			}
			b.ReportMetric(float64(mean.Milliseconds()), "latency-ms")
		})
	}
}

// BenchmarkDecodePath measures the real end-to-end fetch+decode cost the
// simulated DecodeLatency stands in for, at the paper's actual 1 MB object
// size.
func BenchmarkDecodePath(b *testing.B) {
	p := benchParams()
	p.NumObjects = 4
	p.ObjectBytes = 1 << 20 // the paper's real object size
	d, err := experiments.NewDeployment(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Cluster.GetObject(workload.KeyName(i % 4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCooperative quantifies the §VI cooperative-caching
// extension: Frankfurt and Dublin nodes serve the same Zipfian workload,
// with and without peering their caches (peer reads cost 40 ms). The
// metric is the Frankfurt clients' mean read latency.
func BenchmarkAblationCooperative(b *testing.B) {
	for _, coop := range []bool{false, true} {
		name := "isolated"
		if coop {
			name = "peered"
		}
		b.Run(name, func(b *testing.B) {
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				mean = runCooperative(b, coop)
			}
			b.ReportMetric(float64(mean.Milliseconds()), "latency-ms")
			printFirst("ablation-coop-"+name,
				fmt.Sprintf("Ablation cooperative caching (%s): frankfurt mean=%v", name, mean))
		})
	}
}

func runCooperative(b *testing.B, coop bool) time.Duration {
	b.Helper()
	p := benchParams()
	d, err := experiments.NewDeployment(p)
	if err != nil {
		b.Fatal(err)
	}
	env := &client.Env{
		Cluster:        d.Cluster,
		Matrix:         d.Matrix,
		Sampler:        netsim.NewSampler(d.Matrix, p.Jitter, p.Seed),
		CacheLatency:   p.CacheLatency,
		DecodeLatency:  p.DecodeLatency,
		MonitorLatency: p.MonitorLatency,
	}
	mkNode := func(region geo.RegionID) *core.Node {
		n := core.NewNode(core.NodeParams{
			Region:         region,
			Regions:        d.Cluster.Regions(),
			Placement:      d.Cluster.Placement(),
			K:              p.K,
			M:              p.M,
			CacheBytes:     int64(d.SlotsForMB(10)) * d.ChunkBytes(),
			ChunkBytes:     d.ChunkBytes(),
			ReconfigPeriod: p.ReconfigPeriod,
			CacheLatency:   p.CacheLatency,
			EarlyStop:      p.EarlyStop,
		})
		sampler := netsim.NewSampler(d.Matrix, p.Jitter, p.Seed+int64(region))
		n.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
			return sampler.Chunk(region, r)
		}, 3)
		return n
	}
	fra := mkNode(geo.Frankfurt)
	dub := mkNode(geo.Dublin)
	if coop {
		peerLat := 40 * time.Millisecond
		fra.AddPeer(geo.Dublin, dub.Cache(), peerLat)
		dub.AddPeer(geo.Frankfurt, fra.Cache(), peerLat)
	}
	fraReader := client.NewAgarReader(env, geo.Frankfurt, fra)
	dubReader := client.NewAgarReader(env, geo.Dublin, dub)

	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := netsim.NewVirtualClock(start)
	fra.MaybeReconfigure(clock.Now())
	gen := workload.NewZipfian(p.NumObjects, p.ZipfSkew, p.Seed)

	var total time.Duration
	measured := 0
	ops := p.WarmupOps + p.Operations
	for i := 0; i < ops; i++ {
		key := workload.KeyName(gen.Next())
		// Both regions read the same stream, interleaved.
		_, resF, err := fraReader.Read(key)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := dubReader.Read(key); err != nil {
			b.Fatal(err)
		}
		clock.Advance(resF.Latency / 2)
		fra.MaybeReconfigure(clock.Now())
		// Dublin reconfigures on a half-period offset: unsynchronised
		// managers avoid the symmetric both-defer oscillation.
		if clock.Now().Sub(start) > p.ReconfigPeriod/2 {
			dub.MaybeReconfigure(clock.Now())
		}
		if i >= p.WarmupOps {
			total += resF.Latency
			measured++
		}
	}
	return total / time.Duration(measured)
}
