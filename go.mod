module github.com/agardist/agar

go 1.24
