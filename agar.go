// Package agar is a caching system for erasure-coded, geo-distributed data,
// reproducing Halalai et al., "Agar: A Caching System for Erasure-Coded
// Data" (ICDCS 2017).
//
// Objects are Reed-Solomon coded into k data and m parity chunks spread
// round-robin over a set of regions. Each region can run an Agar node: a
// request monitor tracks object popularity (EWMA), a region manager probes
// per-region chunk-read latencies, and a cache manager periodically solves
// a multiple-choice knapsack — the paper's POPULATE/RELAX dynamic program —
// to decide which objects to cache and with how many chunks. Clients
// consult the node before each read and fetch hinted chunks from the local
// cache and the rest from the backend, in parallel.
//
// The package offers two ways to run the system:
//
//   - A simulated deployment (NewCluster): in-process stores with a
//     calibrated wide-area latency model on a virtual clock. This is what
//     the benchmark harness uses to regenerate the paper's figures.
//   - A live deployment (StartLiveCluster): every role served over real
//     TCP/UDP sockets on localhost, with scaled delay injection.
//
// See the examples directory for runnable walkthroughs.
package agar

import (
	"fmt"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
)

// Region identifies a deployment region.
type Region = geo.RegionID

// The paper's six AWS regions.
const (
	Frankfurt = geo.Frankfurt
	Dublin    = geo.Dublin
	NVirginia = geo.NVirginia
	SaoPaulo  = geo.SaoPaulo
	Tokyo     = geo.Tokyo
	Sydney    = geo.Sydney
)

// Regions returns the default six-region topology.
func Regions() []Region { return geo.DefaultRegions() }

// ParseRegion resolves a region name ("frankfurt", "sydney", ...).
func ParseRegion(name string) (Region, error) { return geo.ParseRegion(name) }

// LatencyMatrix models chunk-read latency between regions.
type LatencyMatrix = geo.LatencyMatrix

// DefaultLatencyMatrix returns the calibrated six-region matrix used by the
// evaluation harness.
func DefaultLatencyMatrix() *LatencyMatrix { return geo.DefaultMatrix() }

// TableILatencyMatrix returns a matrix whose Frankfurt row reproduces the
// paper's Table I verbatim.
func TableILatencyMatrix() *LatencyMatrix { return geo.TableIMatrix() }

// config collects the functional options for NewCluster.
type config struct {
	regions        []Region
	k, m           int
	rotate         bool
	matrix         *LatencyMatrix
	jitter         float64
	seed           int64
	cacheLatency   time.Duration
	decodeLatency  time.Duration
	monitorLatency time.Duration
	reconfigPeriod time.Duration
	construction   erasure.Construction
}

// Option customises a cluster.
type Option func(*config)

// WithRegions sets the deployment's regions (default: the paper's six).
func WithRegions(regions ...Region) Option {
	return func(c *config) { c.regions = regions }
}

// WithErasure sets the Reed-Solomon parameters (default 9+3).
func WithErasure(k, m int) Option {
	return func(c *config) { c.k, c.m = k, m }
}

// WithCauchy selects the Cauchy matrix construction (Longhair-style)
// instead of Vandermonde.
func WithCauchy() Option {
	return func(c *config) { c.construction = erasure.Cauchy }
}

// WithRotatingPlacement spreads chunk layouts across objects instead of the
// paper's fixed round-robin.
func WithRotatingPlacement() Option {
	return func(c *config) { c.rotate = true }
}

// WithLatencyMatrix replaces the calibrated latency model.
func WithLatencyMatrix(m *LatencyMatrix) Option {
	return func(c *config) { c.matrix = m }
}

// WithJitter sets the latency jitter fraction (default 0.05).
func WithJitter(f float64) Option {
	return func(c *config) { c.jitter = f }
}

// WithSeed fixes the simulation seed (default 1).
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithCacheLatency sets the modelled local cache access time (default 20 ms).
func WithCacheLatency(d time.Duration) Option {
	return func(c *config) { c.cacheLatency = d }
}

// WithDecodeLatency sets the modelled erasure-decode cost (default 5 ms).
func WithDecodeLatency(d time.Duration) Option {
	return func(c *config) { c.decodeLatency = d }
}

// WithReconfigPeriod sets Agar's reconfiguration period (default 30 s).
func WithReconfigPeriod(d time.Duration) Option {
	return func(c *config) { c.reconfigPeriod = d }
}

// Cluster is a simulated multi-region erasure-coded store with a wide-area
// latency model. It is safe for concurrent use.
type Cluster struct {
	cfg     config
	codec   *erasure.Codec
	backend *backend.Cluster
	matrix  *LatencyMatrix
	sampler *netsim.Sampler
}

// NewCluster builds a simulated deployment.
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg := config{
		regions:        geo.DefaultRegions(),
		k:              9,
		m:              3,
		jitter:         0.05,
		seed:           1,
		cacheLatency:   20 * time.Millisecond,
		decodeLatency:  5 * time.Millisecond,
		monitorLatency: 500 * time.Microsecond,
		reconfigPeriod: 30 * time.Second,
		construction:   erasure.Vandermonde,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.regions) == 0 {
		return nil, fmt.Errorf("agar: at least one region required")
	}
	codec, err := erasure.NewWith(cfg.k, cfg.m, cfg.construction)
	if err != nil {
		return nil, fmt.Errorf("agar: %w", err)
	}
	matrix := cfg.matrix
	if matrix == nil {
		matrix = geo.DefaultMatrix()
	}
	placement := geo.NewRoundRobin(cfg.regions, cfg.rotate)
	return &Cluster{
		cfg:     cfg,
		codec:   codec,
		backend: backend.NewCluster(cfg.regions, codec, placement),
		matrix:  matrix,
		sampler: netsim.NewSampler(matrix, cfg.jitter, cfg.seed),
	}, nil
}

// Put encodes and stores an object across the regions.
func (c *Cluster) Put(key string, data []byte) error {
	return c.backend.PutObject(key, data)
}

// Get reads an object directly from the backend (no caching layer).
func (c *Cluster) Get(key string) ([]byte, error) {
	return c.backend.GetObject(key)
}

// K returns the data-chunk count.
func (c *Cluster) K() int { return c.codec.K() }

// M returns the parity-chunk count.
func (c *Cluster) M() int { return c.codec.M() }

// ChunkSize returns the per-chunk size for an object of n bytes.
func (c *Cluster) ChunkSize(n int) int { return c.codec.ChunkSize(n) }

// SetRegionDown injects (or clears) a full region failure.
func (c *Cluster) SetRegionDown(r Region, down bool) {
	if s := c.backend.Store(r); s != nil {
		s.SetDown(down)
	}
}

// TotalBytes reports the bytes stored across all regions, redundancy
// included.
func (c *Cluster) TotalBytes() int64 { return c.backend.TotalBytes() }
