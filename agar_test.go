package agar_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	agar "github.com/agardist/agar"
)

const (
	objSize    = 9 * 1024
	chunkBytes = 1025
)

func loadedCluster(t testing.TB, n int, opts ...agar.Option) *agar.Cluster {
	t.Helper()
	c, err := agar.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, objSize)
		if err := c.Put(fmt.Sprintf("object-%05d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterPutGet(t *testing.T) {
	c := loadedCluster(t, 3)
	got, err := c.Get("object-00001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, objSize)) {
		t.Fatal("round trip failed")
	}
	if c.K() != 9 || c.M() != 3 {
		t.Fatal("default erasure parameters wrong")
	}
	if c.ChunkSize(objSize) != chunkBytes {
		t.Fatalf("ChunkSize = %d", c.ChunkSize(objSize))
	}
}

func TestClusterOptions(t *testing.T) {
	c, err := agar.NewCluster(
		agar.WithErasure(4, 2),
		agar.WithCauchy(),
		agar.WithRotatingPlacement(),
		agar.WithJitter(0),
		agar.WithSeed(9),
		agar.WithLatencyMatrix(agar.TableILatencyMatrix()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 4 || c.M() != 2 {
		t.Fatal("erasure option ignored")
	}
	if err := c.Put("k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestClusterRejectsEmptyRegions(t *testing.T) {
	if _, err := agar.NewCluster(agar.WithRegions()); err == nil {
		t.Fatal("accepted empty region list")
	}
}

func TestBackendClient(t *testing.T) {
	c := loadedCluster(t, 2, agar.WithJitter(0))
	cl := c.NewBackendClient(agar.Frankfurt)
	if cl.Strategy() != "backend" || cl.Region() != agar.Frankfurt {
		t.Fatal("identity wrong")
	}
	data, st, err := cl.Get("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != objSize || st.CacheChunks != 0 || st.BackendChunks != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Latency != 985*time.Millisecond {
		t.Fatalf("latency = %v", st.Latency)
	}
	if cl.CacheContents() != nil {
		t.Fatal("backend client has no cache")
	}
	cl.Reconfigure() // no-op, must not panic
}

func TestLRUAndLFUClients(t *testing.T) {
	c := loadedCluster(t, 2, agar.WithJitter(0))
	for _, cl := range []*agar.Client{
		c.NewLRUClient(agar.Frankfurt, 3, 90*chunkBytes),
		c.NewLFUClient(agar.Frankfurt, 3, 90*chunkBytes),
	} {
		cl.Get("object-00000")
		_, st, err := cl.Get("object-00000")
		if err != nil {
			t.Fatal(err)
		}
		if !st.PartialHit || st.CacheChunks != 3 {
			t.Fatalf("%s warm read: %+v", cl.Strategy(), st)
		}
		if len(cl.CacheContents()["object-00000"]) != 3 {
			t.Fatalf("%s cache contents wrong", cl.Strategy())
		}
	}
}

func TestAgarClientEndToEnd(t *testing.T) {
	c := loadedCluster(t, 10, agar.WithJitter(0))
	cl, err := c.NewAgarClient(agar.Sydney, 18*chunkBytes, chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Strategy() != "agar" {
		t.Fatal("strategy name")
	}
	for i := 0; i < 40; i++ {
		if _, _, err := cl.Get("object-00000"); err != nil {
			t.Fatal(err)
		}
	}
	cl.Reconfigure()
	cl.Get("object-00000") // populates hinted chunks
	_, st, err := cl.Get("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheChunks == 0 {
		t.Fatalf("expected cache hits after reconfiguration: %+v", st)
	}
	if len(cl.CacheContents()) == 0 {
		t.Fatal("cache empty after population")
	}
}

func TestAgarClientValidation(t *testing.T) {
	c := loadedCluster(t, 1)
	if _, err := c.NewAgarClient(agar.Frankfurt, 1024, 0); err == nil {
		t.Fatal("accepted zero chunkBytes")
	}
}

func TestMaybeReconfigureOnVirtualTime(t *testing.T) {
	c := loadedCluster(t, 2, agar.WithReconfigPeriod(10*time.Second))
	cl, err := c.NewAgarClient(agar.Frankfurt, 9*chunkBytes, chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	if !cl.MaybeReconfigure(base) {
		t.Fatal("first reconfigure must run")
	}
	if cl.MaybeReconfigure(base.Add(5 * time.Second)) {
		t.Fatal("period not elapsed")
	}
	if !cl.MaybeReconfigure(base.Add(11 * time.Second)) {
		t.Fatal("period elapsed but no reconfiguration")
	}
}

func TestRegionFailureDegradedRead(t *testing.T) {
	c := loadedCluster(t, 1, agar.WithJitter(0))
	cl := c.NewBackendClient(agar.Frankfurt)
	c.SetRegionDown(agar.Tokyo, true)
	data, _, err := cl.Get("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0}, objSize)) {
		t.Fatal("degraded read wrong data")
	}
	c.SetRegionDown(agar.Tokyo, false)
}

func TestTotalBytesIncludesRedundancy(t *testing.T) {
	c := loadedCluster(t, 10)
	raw := int64(10 * objSize)
	total := c.TotalBytes()
	if ratio := float64(total) / float64(raw); ratio < 1.3 || ratio > 1.4 {
		t.Fatalf("overhead ratio %.3f", ratio)
	}
}

func TestLiveClusterFacade(t *testing.T) {
	lc, err := agar.StartLiveCluster(agar.LiveConfig{
		ClientRegion: agar.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if lc.CacheAddr() == "" || lc.HintAddr() == "" || lc.StoreAddr(agar.Tokyo) == "" {
		t.Fatal("addresses missing")
	}
	data := bytes.Repeat([]byte{42}, 10_000)
	if err := lc.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	r, err := lc.NewLiveReader(agar.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 25; i++ {
		got, _, _, err := r.Get("obj")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("live read wrong data")
		}
	}
	lc.Reconfigure()
	r.Get("obj") // populate
	_, _, fromCache, err := r.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if fromCache == 0 {
		t.Fatal("no cache hits after reconfiguration")
	}
	if len(lc.CacheContents()) == 0 {
		t.Fatal("cache contents empty")
	}
}

func TestCooperativePeeringFacade(t *testing.T) {
	c := loadedCluster(t, 6, agar.WithJitter(0))
	fra, err := c.NewAgarClient(agar.Frankfurt, 18*chunkBytes, chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	dub, err := c.NewAgarClient(agar.Dublin, 18*chunkBytes, chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := fra.Peer(dub, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Peering a non-Agar client must fail.
	if err := fra.Peer(c.NewBackendClient(agar.Dublin), time.Millisecond); err == nil {
		t.Fatal("peered a backend client")
	}

	// Dublin warms its cache; a Frankfurt read then beats an isolated one.
	for i := 0; i < 50; i++ {
		dub.Get("object-00000")
	}
	dub.Reconfigure()
	dub.Get("object-00000")
	_, coopStats, err := fra.Get("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	solo := c.NewBackendClient(agar.Frankfurt)
	_, soloStats, err := solo.Get("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if coopStats.Latency >= soloStats.Latency {
		t.Fatalf("cooperative read (%v) not faster than backend read (%v)",
			coopStats.Latency, soloStats.Latency)
	}
}
